//! Two-phase primal simplex on a dense tableau.
//!
//! Pipeline: shift variables by their lower bounds so everything is ≥ 0,
//! add slack/surplus columns for inequality rows, flip rows to make the
//! right-hand side non-negative, then run phase 1 (minimize the sum of
//! artificial variables) and, if feasible, phase 2 on the real objective.
//!
//! Pivoting uses **Bland's rule** (smallest eligible index), which
//! guarantees termination at the cost of a few extra pivots — a good trade
//! for a solver embedded in a long-running training loop where a cycling
//! hang would stall the Network Monitor.

// Index-based loops are kept where they mirror the matrix maths.
#![allow(clippy::needless_range_loop)]

use crate::problem::{LpProblem, Relation};
use crate::LP_EPS;

/// A primal-optimal LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal values of the original decision variables.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Total simplex pivots across both phases (diagnostics).
    pub pivots: usize,
}

/// Outcome of solving an LP.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// A finite optimum was found.
    Optimal(LpSolution),
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Returns the solution if optimal, `None` otherwise.
    pub fn optimal(self) -> Option<LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }

    /// `true` if the outcome is [`LpOutcome::Optimal`].
    pub fn is_optimal(&self) -> bool {
        matches!(self, LpOutcome::Optimal(_))
    }
}

/// Dense simplex tableau in standard form `A y = b, y ≥ 0`.
struct Tableau {
    /// m × n coefficient matrix, row-major.
    a: Vec<f64>,
    /// Right-hand side, length m (kept ≥ 0 by pivoting invariant).
    b: Vec<f64>,
    m: usize,
    n: usize,
    /// `basis[r]` = column currently basic in row r.
    basis: Vec<usize>,
    pivots: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.n + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * self.n + c]
    }

    /// Gauss-Jordan pivot on (row, col): normalizes the pivot row and
    /// eliminates the pivot column from every other row.
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.at(row, col);
        debug_assert!(p.abs() > LP_EPS, "pivot on (near-)zero element");
        let inv = 1.0 / p;
        for c in 0..self.n {
            *self.at_mut(row, c) *= inv;
        }
        self.b[row] *= inv;
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let f = self.at(r, col);
            if f == 0.0 {
                continue;
            }
            for c in 0..self.n {
                let v = self.at(row, c);
                *self.at_mut(r, c) -= f * v;
            }
            self.b[r] -= f * self.b[row];
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Reduced costs `r_j = c_j - Σ_r c_basis[r] * a[r][j]` for the column
    /// chunk `j0..j1`, written into `red[j0..j1]`. Rows are accumulated in
    /// ascending order with the same zero-cost skip as a full-width pass,
    /// so each entry is bit-identical whether computed chunked or whole.
    fn reduced_costs_chunk(&self, c: &[f64], red: &mut [f64], j0: usize, j1: usize) {
        red[j0..j1].copy_from_slice(&c[j0..j1]);
        for r in 0..self.m {
            let cb = c[self.basis[r]];
            if cb == 0.0 {
                continue;
            }
            let row = &self.a[r * self.n + j0..r * self.n + j1];
            for (rj, &arj) in red[j0..j1].iter_mut().zip(row) {
                *rj -= cb * arj;
            }
        }
    }

    /// Bland's entering column: the smallest index with negative reduced
    /// cost, or `None` at optimality. Columns are priced in chunks so the
    /// scan stops at the first chunk containing an eligible column —
    /// pricing the full tableau every pivot is the dominant cost of the
    /// dense simplex, and Bland's rule usually enters a low-index column.
    fn entering_column(&self, c: &[f64], red: &mut [f64]) -> Option<usize> {
        const CHUNK: usize = 16;
        let mut j0 = 0;
        while j0 < self.n {
            let j1 = (j0 + CHUNK).min(self.n);
            self.reduced_costs_chunk(c, red, j0, j1);
            if let Some(j) = (j0..j1).find(|&j| red[j] < -LP_EPS) {
                return Some(j);
            }
            j0 = j1;
        }
        None
    }

    /// Runs simplex minimization of `c^T y` from the current basic feasible
    /// solution. `red` is scratch for reduced costs (length ≥ n). Returns
    /// `false` if unbounded.
    fn minimize(&mut self, c: &[f64], max_pivots: usize, red: &mut [f64]) -> bool {
        for _ in 0..max_pivots {
            // Bland: entering column = smallest index with negative reduced cost.
            let Some(col) = self.entering_column(c, red) else {
                return true; // optimal
            };
            // Ratio test, Bland tie-break on basis index.
            let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis_var, row)
            for r in 0..self.m {
                let arc = self.at(r, col);
                if arc > LP_EPS {
                    let ratio = self.b[r] / arc;
                    let key = (ratio, self.basis[r]);
                    match best {
                        None => best = Some((key.0, key.1, r)),
                        Some((br, bv, _)) => {
                            if ratio < br - LP_EPS || ((ratio - br).abs() <= LP_EPS && key.1 < bv) {
                                best = Some((key.0, key.1, r));
                            }
                        }
                    }
                }
            }
            let Some((_, _, row)) = best else {
                return false; // unbounded along `col`
            };
            self.pivot(row, col);
        }
        // Pivot cap exhausted: treat as optimal-enough. With Bland's rule
        // this is unreachable for well-posed inputs; the cap is a safety net.
        true
    }

}

/// Reusable buffers for [`solve_with`]: the tableau, objective rows, and
/// pricing scratch survive across solves, so a caller sweeping many LPs of
/// the same shape (the policy generator's `(ρ, t̄)` grid) performs no
/// steady-state allocation. Every buffer is re-stamped from the problem
/// before use — reuse changes memory traffic only, never a computed value.
#[derive(Debug, Default)]
pub struct LpWorkspace {
    a: Vec<f64>,
    b: Vec<f64>,
    basis: Vec<usize>,
    phase1_c: Vec<f64>,
    phase2_c: Vec<f64>,
    red: Vec<f64>,
    /// `pos[col]` = row in which `col` is basic (`usize::MAX` if nonbasic).
    pos: Vec<usize>,
}

impl LpWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Solves the LP with the two-phase simplex method.
///
/// Returns [`LpOutcome::Infeasible`] when phase 1 cannot drive the
/// artificial variables to zero, and [`LpOutcome::Unbounded`] when phase 2
/// finds a descent ray.
pub fn solve(problem: &LpProblem) -> LpOutcome {
    solve_with(problem, &mut LpWorkspace::new())
}

/// [`solve`] with caller-provided scratch buffers. Results are identical
/// to a fresh-workspace solve; only allocation traffic differs.
pub fn solve_with(problem: &LpProblem, ws: &mut LpWorkspace) -> LpOutcome {
    let n_orig = problem.num_vars();
    let rows = problem.constraints();
    let m = rows.len();
    let lb = problem.lower_bounds();

    // Count slack columns needed (one per inequality row).
    let n_slack = rows
        .iter()
        .filter(|r| r.relation != Relation::Eq)
        .count();
    // Layout: [ structural (shifted) | slack/surplus | artificial ].
    let n_struct = n_orig;
    let n_total_no_art = n_struct + n_slack;
    let n_total = n_total_no_art + m; // one artificial per row (some unused)

    let mut a = std::mem::take(&mut ws.a);
    a.clear();
    a.resize(m * n_total, 0.0);
    let mut b = std::mem::take(&mut ws.b);
    b.clear();
    b.resize(m, 0.0);

    let mut slack_cursor = 0usize;
    for (r, row) in rows.iter().enumerate() {
        // Shift x = lb + y: rhs' = rhs - Σ a_j lb_j.
        let mut rhs = row.rhs;
        for &(v, coef) in &row.coeffs {
            a[r * n_total + v] = coef;
            rhs -= coef * lb[v];
        }
        match row.relation {
            Relation::Le => {
                a[r * n_total + n_struct + slack_cursor] = 1.0;
                slack_cursor += 1;
            }
            Relation::Ge => {
                a[r * n_total + n_struct + slack_cursor] = -1.0;
                slack_cursor += 1;
            }
            Relation::Eq => {}
        }
        b[r] = rhs;
    }
    debug_assert_eq!(slack_cursor, n_slack);

    // Flip rows with negative rhs so b ≥ 0 (required for the initial
    // artificial basis to be feasible).
    for r in 0..m {
        if b[r] < 0.0 {
            for c in 0..n_total {
                a[r * n_total + c] = -a[r * n_total + c];
            }
            b[r] = -b[r];
        }
    }

    // Install artificial columns: artificial for row r is column
    // n_total_no_art + r, forming an identity basis.
    let mut basis = std::mem::take(&mut ws.basis);
    basis.clear();
    for r in 0..m {
        a[r * n_total + n_total_no_art + r] = 1.0;
        basis.push(n_total_no_art + r);
    }

    let mut tab = Tableau { a, b, m, n: n_total, basis, pivots: 0 };
    // Hand the tableau buffers back to the workspace whatever path exits.
    macro_rules! finish {
        ($outcome:expr) => {{
            ws.a = tab.a;
            ws.b = tab.b;
            ws.basis = tab.basis;
            return $outcome;
        }};
    }

    // Phase 1: minimize the sum of artificials.
    let phase1_c = &mut ws.phase1_c;
    phase1_c.clear();
    phase1_c.resize(n_total, 0.0);
    for c in phase1_c.iter_mut().skip(n_total_no_art) {
        *c = 1.0;
    }
    let max_pivots = 50 * (n_total + m + 10);
    let red = &mut ws.red;
    red.clear();
    red.resize(n_total, 0.0);
    if !tab.minimize(phase1_c, max_pivots, red) {
        // Phase 1 objective is bounded below by 0; unbounded is impossible
        // for well-formed input, treat defensively as infeasible.
        finish!(LpOutcome::Infeasible);
    }
    let phase1_obj: f64 = (0..m)
        .filter(|&r| tab.basis[r] >= n_total_no_art)
        .map(|r| tab.b[r])
        .sum();
    if phase1_obj > 1e-7 {
        finish!(LpOutcome::Infeasible);
    }

    // Drive any residual artificial variables out of the basis (they are at
    // zero level; pivot them out on any non-artificial column, or drop the
    // redundant row by leaving it — the zero level keeps it harmless).
    for r in 0..m {
        if tab.basis[r] >= n_total_no_art {
            if let Some(col) = (0..n_total_no_art).find(|&j| tab.at(r, j).abs() > 1e-7) {
                tab.pivot(r, col);
            }
        }
    }

    // Phase 2: original objective on shifted variables (constant offset
    // Σ c_j lb_j added back at extraction). Forbid re-entry of artificials
    // by pricing them prohibitively.
    let phase2_c = &mut ws.phase2_c;
    phase2_c.clear();
    phase2_c.resize(n_total, 0.0);
    phase2_c[..n_orig].copy_from_slice(problem.objective());
    // Large positive cost keeps artificial columns out of the basis.
    let big = 1.0
        + problem
            .objective()
            .iter()
            .fold(0.0f64, |acc, &v| acc.max(v.abs()))
            * 1e6;
    for c in phase2_c.iter_mut().skip(n_total_no_art) {
        *c = big;
    }
    if !tab.minimize(phase2_c, max_pivots, red) {
        finish!(LpOutcome::Unbounded);
    }

    // Extract solution: x_j = lb_j + y_j. A column is basic in at most
    // one row, so the row map reads off the same value `value_of` finds
    // by scanning.
    let pos = &mut ws.pos;
    pos.clear();
    pos.resize(n_total, usize::MAX);
    for r in 0..m {
        if pos[tab.basis[r]] == usize::MAX {
            pos[tab.basis[r]] = r;
        }
    }
    let x: Vec<f64> = (0..n_orig)
        .map(|j| {
            let y = if pos[j] == usize::MAX { 0.0 } else { tab.b[pos[j]] };
            lb[j] + y
        })
        .collect();
    let objective = problem.objective_value(&x);
    finish!(LpOutcome::Optimal(LpSolution { x, objective, pivots: tab.pivots }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Relation};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn textbook_maximization_as_minimization() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  (classic Dantzig)
        // -> min -3x -5y; optimum x=2, y=6, obj = -36.
        let mut p = LpProblem::new(2);
        p.set_objective(0, -3.0).set_objective(1, -5.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = solve(&p).optimal().expect("should be optimal");
        assert_close(s.x[0], 2.0, 1e-8);
        assert_close(s.x[1], 6.0, 1e-8);
        assert_close(s.objective, -36.0, 1e-8);
        assert!(p.is_feasible(&s.x, 1e-8));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 1, x - y = 0 -> x = y = 0.5.
        let mut p = LpProblem::new(2);
        p.set_objective(0, 1.0).set_objective(1, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], Relation::Eq, 0.0);
        let s = solve(&p).optimal().expect("optimal");
        assert_close(s.x[0], 0.5, 1e-8);
        assert_close(s.x[1], 0.5, 1e-8);
    }

    #[test]
    fn ge_constraints_and_lower_bounds() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 (via bounds).
        // Optimum: push the cheap variable: x = 7, y = 3, obj = 23.
        let mut p = LpProblem::new(2);
        p.set_objective(0, 2.0).set_objective(1, 3.0);
        p.set_lower_bound(0, 2.0).set_lower_bound(1, 3.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        let s = solve(&p).optimal().expect("optimal");
        assert_close(s.x[0], 7.0, 1e-8);
        assert_close(s.x[1], 3.0, 1e-8);
        assert_close(s.objective, 23.0, 1e-8);
    }

    #[test]
    fn detects_infeasible() {
        // x >= 5 and x <= 1 simultaneously.
        let mut p = LpProblem::new(1);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 5.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0);
        assert!(matches!(solve(&p), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        // min -x with only x >= 0: unbounded below.
        let mut p = LpProblem::new(1);
        p.set_objective(0, -1.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 0.0);
        assert!(matches!(solve(&p), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let mut p = LpProblem::new(1);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, -1.0)], Relation::Le, -3.0);
        let s = solve(&p).optimal().expect("optimal");
        assert_close(s.x[0], 3.0, 1e-8);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // A classically degenerate instance (Beale-like); Bland must terminate.
        let mut p = LpProblem::new(4);
        p.set_objective(0, -0.75)
            .set_objective(1, 150.0)
            .set_objective(2, -0.02)
            .set_objective(3, 6.0);
        p.add_constraint(
            vec![(0, 0.25), (1, -60.0), (2, -1.0 / 25.0), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            vec![(0, 0.5), (1, -90.0), (2, -1.0 / 50.0), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(vec![(2, 1.0)], Relation::Le, 1.0);
        let out = solve(&p);
        let s = out.optimal().expect("Beale instance has optimum -1/20");
        assert_close(s.objective, -0.05, 1e-6);
    }

    #[test]
    fn stochastic_row_structure_like_netmax() {
        // A miniature of the NetMax LP: 3 nodes in a triangle, probabilities
        // per row summing to 1, per-row expected time fixed, minimize the
        // self-selection mass. Variables: p01 p02 p10 p12 p20 p21 p00 p11 p22.
        let t = [[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]];
        let target = 0.8; // per-row expected iteration time (must be ≤ min_i max_m t_im = 1.0)
        let lb = 0.05;
        let mut p = LpProblem::new(9);
        let idx = |i: usize, j: usize| -> usize {
            // off-diagonals first (row-major skipping diagonal), then diagonal.
            let off = [[usize::MAX, 0, 1], [2, usize::MAX, 3], [4, 5, usize::MAX]];
            if i == j {
                6 + i
            } else {
                off[i][j]
            }
        };
        for i in 0..3 {
            p.set_objective(idx(i, i), 1.0);
            let mut sum_row = vec![(idx(i, i), 1.0)];
            let mut time_row = Vec::new();
            for j in 0..3 {
                if i != j {
                    sum_row.push((idx(i, j), 1.0));
                    time_row.push((idx(i, j), t[i][j]));
                    p.set_lower_bound(idx(i, j), lb);
                }
            }
            p.add_constraint(sum_row, Relation::Eq, 1.0);
            p.add_constraint(time_row, Relation::Eq, target);
        }
        let s = solve(&p).optimal().expect("netmax-like LP is feasible");
        assert!(p.is_feasible(&s.x, 1e-7));
        // Row sums are 1 and time rows hit the target.
        for i in 0..3 {
            let row_sum: f64 = (0..3).map(|j| s.x[idx(i, j)]).sum();
            assert_close(row_sum, 1.0, 1e-7);
            let row_time: f64 = (0..3).filter(|&j| j != i).map(|j| t[i][j] * s.x[idx(i, j)]).sum();
            assert_close(row_time, target, 1e-7);
        }
    }
}
