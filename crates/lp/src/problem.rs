//! LP problem builder.
//!
//! A thin, explicit model: minimize `c^T x` subject to sparse linear rows
//! with `≤ / ≥ / =` relations and per-variable lower bounds (default 0,
//! i.e. the conventional non-negativity). Upper bounds are expressed as
//! ordinary `≤` rows — the NetMax LP only needs lower bounds plus equality
//! rows, and keeping the model small keeps the solver auditable.

/// Relation of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aⱼ xⱼ ≤ b`
    Le,
    /// `Σ aⱼ xⱼ ≥ b`
    Ge,
    /// `Σ aⱼ xⱼ = b`
    Eq,
}

/// One sparse linear constraint row.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices must be unique.
    pub coeffs: Vec<(usize, f64)>,
    /// The row relation.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: minimize `c^T x` subject to constraint rows and
/// per-variable lower bounds.
#[derive(Debug, Clone)]
pub struct LpProblem {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    lower_bounds: Vec<f64>,
}

impl LpProblem {
    /// Creates a problem with `num_vars` variables, zero objective, no
    /// constraints, and lower bounds of 0 for every variable.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
            lower_bounds: vec![0.0; num_vars],
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Sets the objective coefficient of variable `var` (minimization).
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn set_objective(&mut self, var: usize, coeff: f64) -> &mut Self {
        assert!(var < self.num_vars, "set_objective: variable out of range");
        self.objective[var] = coeff;
        self
    }

    /// Sets the lower bound of variable `var` (default 0).
    ///
    /// # Panics
    /// Panics if `var` is out of range or `lb` is not finite.
    pub fn set_lower_bound(&mut self, var: usize, lb: f64) -> &mut Self {
        assert!(var < self.num_vars, "set_lower_bound: variable out of range");
        assert!(lb.is_finite(), "set_lower_bound: bound must be finite");
        self.lower_bounds[var] = lb;
        self
    }

    /// Adds a constraint row.
    ///
    /// # Panics
    /// Panics if any referenced variable is out of range, a variable is
    /// referenced twice, or any coefficient / the rhs is not finite.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> &mut Self {
        assert!(rhs.is_finite(), "add_constraint: rhs must be finite");
        let mut seen = vec![false; self.num_vars];
        for &(v, c) in &coeffs {
            assert!(v < self.num_vars, "add_constraint: variable {v} out of range");
            assert!(c.is_finite(), "add_constraint: coefficient must be finite");
            assert!(!seen[v], "add_constraint: duplicate variable {v}");
            seen[v] = true;
        }
        self.constraints.push(Constraint { coeffs, relation, rhs });
        self
    }

    /// Overwrites the right-hand side of constraint row `row`.
    ///
    /// The policy generator solves the same constraint *structure* for a
    /// grid of `(ρ, t̄)` candidates; re-stamping the rhs (and lower
    /// bounds) in place avoids rebuilding every coefficient row per
    /// candidate.
    ///
    /// # Panics
    /// Panics if `row` is out of range or `rhs` is not finite.
    pub fn set_constraint_rhs(&mut self, row: usize, rhs: f64) -> &mut Self {
        assert!(row < self.constraints.len(), "set_constraint_rhs: row out of range");
        assert!(rhs.is_finite(), "set_constraint_rhs: rhs must be finite");
        self.constraints[row].rhs = rhs;
        self
    }

    /// The objective vector (minimization).
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Per-variable lower bounds.
    pub fn lower_bounds(&self) -> &[f64] {
        &self.lower_bounds
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks primal feasibility of `x` within tolerance `tol`.
    ///
    /// Used by the NetMax policy generator in debug assertions and by the
    /// test suite to validate solver output independently of the solver.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars {
            return false;
        }
        for (xi, lb) in x.iter().zip(&self.lower_bounds) {
            if *xi < lb - tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.coeffs.iter().map(|&(v, a)| a * x[v]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut p = LpProblem::new(3);
        p.set_objective(0, 1.0)
            .set_objective(2, -2.0)
            .set_lower_bound(1, 0.5)
            .add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0)
            .add_constraint(vec![(2, 3.0)], Relation::Eq, 6.0);
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.objective(), &[1.0, 0.0, -2.0]);
        assert_eq!(p.lower_bounds(), &[0.0, 0.5, 0.0]);
        assert_eq!(p.constraints().len(), 2);
    }

    #[test]
    fn feasibility_check() {
        let mut p = LpProblem::new(2);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
        p.set_lower_bound(0, 0.1);
        assert!(p.is_feasible(&[0.4, 0.6], 1e-9));
        assert!(!p.is_feasible(&[0.05, 0.95], 1e-9)); // violates lb
        assert!(!p.is_feasible(&[0.5, 0.6], 1e-9)); // violates equality
        assert!(!p.is_feasible(&[0.5], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_value() {
        let mut p = LpProblem::new(2);
        p.set_objective(0, 2.0).set_objective(1, -1.0);
        assert_eq!(p.objective_value(&[3.0, 4.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn rejects_duplicate_vars() {
        let mut p = LpProblem::new(2);
        p.add_constraint(vec![(0, 1.0), (0, 2.0)], Relation::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut p = LpProblem::new(2);
        p.add_constraint(vec![(5, 1.0)], Relation::Le, 1.0);
    }
}
