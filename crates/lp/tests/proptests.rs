//! Property-based tests for the simplex solver.
//!
//! Strategy: generate LPs with a *known* feasible point by construction,
//! then check that (a) the solver never reports infeasible, (b) reported
//! optima are primal-feasible, and (c) the optimum is no worse than the
//! known feasible point's objective.

use netmax_lp::{solve, LpOutcome, LpProblem, Relation};
use proptest::prelude::*;

/// A random LP over `n` variables built around a known interior point.
#[derive(Debug, Clone)]
struct SeededLp {
    problem: LpProblem,
    witness: Vec<f64>,
}

fn seeded_lp(n: usize, rows: usize) -> impl Strategy<Value = SeededLp> {
    (
        proptest::collection::vec(0.1f64..5.0, n),        // witness point
        proptest::collection::vec(-3.0f64..3.0, n),       // objective
        proptest::collection::vec(
            (proptest::collection::vec(-2.0f64..2.0, n), 0usize..3, 0.0f64..2.0),
            rows,
        ),
    )
        .prop_map(move |(witness, obj, raw_rows)| {
            let mut p = LpProblem::new(n);
            for (j, c) in obj.iter().enumerate() {
                p.set_objective(j, *c);
            }
            for (coeffs, rel_idx, slackness) in raw_rows {
                let lhs: f64 = coeffs.iter().zip(&witness).map(|(a, x)| a * x).sum();
                let dense: Vec<(usize, f64)> = coeffs
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0.0)
                    .map(|(j, &c)| (j, c))
                    .collect();
                if dense.is_empty() {
                    continue;
                }
                // Choose rhs so the witness satisfies the row.
                match rel_idx {
                    0 => p.add_constraint(dense, Relation::Le, lhs + slackness),
                    1 => p.add_constraint(dense, Relation::Ge, lhs - slackness),
                    _ => p.add_constraint(dense, Relation::Eq, lhs),
                };
            }
            SeededLp { problem: p, witness }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// An LP constructed around a feasible witness is never infeasible, and
    /// any reported optimum is feasible and at least as good as the witness.
    #[test]
    fn solver_respects_witness(lp in seeded_lp(5, 4)) {
        let witness_obj = lp.problem.objective_value(&lp.witness);
        prop_assert!(lp.problem.is_feasible(&lp.witness, 1e-7),
            "generator bug: witness must be feasible");
        match solve(&lp.problem) {
            LpOutcome::Optimal(s) => {
                prop_assert!(lp.problem.is_feasible(&s.x, 1e-5),
                    "optimal point not primal-feasible: {:?}", s.x);
                prop_assert!(s.objective <= witness_obj + 1e-6,
                    "optimum {} worse than witness {}", s.objective, witness_obj);
            }
            LpOutcome::Unbounded => { /* legitimate: random objectives can descend forever */ }
            LpOutcome::Infeasible => {
                prop_assert!(false, "solver claimed infeasible despite witness");
            }
        }
    }

    /// Pure equality systems with witness: solution must satisfy all rows.
    #[test]
    fn equality_systems(lp in seeded_lp(4, 3)) {
        // Rebuild with all-equality rows through the same witness.
        let witness = lp.witness.clone();
        let mut p = LpProblem::new(4);
        for (row_i, c) in lp.problem.constraints().iter().enumerate() {
            let lhs: f64 = c.coeffs.iter().map(|&(v, a)| a * witness[v]).sum();
            p.add_constraint(c.coeffs.clone(), Relation::Eq, lhs);
            // Vary objective a bit per row for coverage.
            p.set_objective(row_i % 4, 1.0);
        }
        match solve(&p) {
            LpOutcome::Optimal(s) => prop_assert!(p.is_feasible(&s.x, 1e-5)),
            LpOutcome::Unbounded => {}
            LpOutcome::Infeasible => prop_assert!(false, "infeasible despite witness"),
        }
    }
}
