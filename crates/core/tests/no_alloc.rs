// A global allocator shim is inherently `unsafe`; this is the one test
// harness in the workspace that needs it.
#![allow(unsafe_code)]

//! Proof that the steady-state training hot path allocates nothing.
//!
//! A counting global allocator tracks every allocation on this thread;
//! after a warm-up phase (buffers sized, pools filled, event-queue
//! capacity reached) a window of pure `GlobalStep` events must perform
//! **zero** heap allocations. Metric samples and monitor rounds are
//! excluded by construction (their cadences are pushed past the window)
//! — they are allowed to allocate, bounded per round, not per step.

use netmax_core::engine::{
    CheckpointScratch, Environment, GossipBehavior, GossipDriver, PeerChoice, Session, StepEvent,
    StopCondition, TrainConfig,
};
use netmax_json::Json;
use netmax_ml::partition::Partition;
use netmax_ml::workload::Workload;
use netmax_net::{HomogeneousNetwork, Topology};
use rand::Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn alloc_count() -> u64 {
    ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Uniform gossip averaging — the AD-PSGD-shaped exercise of the full
/// gossip hot path (sampler, gradient, pull pool, blend, event queue).
struct UniformAveraging;

impl GossipBehavior for UniformAveraging {
    fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice {
        let degree = env.topology.neighbors(i).len();
        let k = env.node_rng(i).gen_range(0..degree);
        PeerChoice::Peer(env.topology.neighbors(i)[k])
    }

    fn merge(&mut self, env: &mut Environment, i: usize, _m: usize, pulled: &[f32]) {
        netmax_ml::params::blend(0.5, env.nodes[i].model.params_mut(), pulled);
    }
}

fn build_env(workload: Workload) -> Environment {
    let n = 4;
    let partition = Partition::uniform(&workload.train, n, 7);
    let cfg = TrainConfig {
        // Push sampling far past the measurement window; steps 100..600
        // must be pure GlobalStep events.
        record_every_steps: u64::MAX / 2,
        stop: Some(StopCondition::MaxGlobalSteps(10_000)),
        ..TrainConfig::quick_test()
    };
    Environment::new(
        Topology::fully_connected(n),
        Box::new(HomogeneousNetwork::paper_default(n)),
        workload,
        partition,
        cfg,
    )
}

fn assert_steady_state_alloc_free(workload: Workload, label: &str) {
    let mut env = build_env(workload);
    let mut behavior = UniformAveraging;
    let mut session =
        Session::new(&mut env, Box::new(GossipDriver::new(&mut behavior, "no-alloc"))).unwrap();

    // Warm-up: size every scratch buffer, fill the pull-buffer pool, let
    // the event queue and samplers reach steady capacity (including at
    // least one epoch-boundary reshuffle).
    let mut steps = 0;
    while steps < 100 {
        if let StepEvent::GlobalStep { .. } = session.step() {
            steps += 1;
        }
    }

    let before = alloc_count();
    let mut measured = 0;
    while measured < 500 {
        match session.step() {
            StepEvent::GlobalStep { .. } => measured += 1,
            other => panic!("{label}: unexpected event in steady-state window: {other:?}"),
        }
    }
    let allocs = alloc_count() - before;
    assert_eq!(
        allocs, 0,
        "{label}: {allocs} allocation(s) in 500 steady-state global steps"
    );
}

#[test]
fn gossip_steady_state_is_allocation_free_ridge() {
    // LeastSquares: exercises the default `loss_grad_scratch` path.
    assert_steady_state_alloc_free(Workload::convex_ridge(3), "ridge");
}

#[test]
fn gossip_steady_state_is_allocation_free_softmax() {
    // Softmax: exercises the batched forward/softmax kernels.
    assert_steady_state_alloc_free(Workload::resnet18_cifar10(11), "softmax");
}

#[test]
fn gossip_steady_state_is_allocation_free_mlp() {
    // MLP: exercises the hidden-layer scratch buffers.
    assert_steady_state_alloc_free(Workload::mobilenet_cifar100(12), "mlp");
}

/// The checkpoint fast path in steady state: once the scratch buffers are
/// warm, streaming every node's parameters, momentum, sampler, and clock
/// state into a binary snapshot — full or delta — performs **zero** heap
/// allocations, interleaved with live training steps. This is the fix for
/// the old `Session::checkpoint()` behaviour of rebuilding per-node
/// `Json` vectors on every periodic snapshot. (The fleet-size-independent
/// `meta` document is built outside the window here; its cost is bounded
/// per snapshot, not proportional to model or fleet size.)
#[test]
fn binary_checkpoint_cycle_is_allocation_free_in_steady_state() {
    let mut env = build_env(Workload::convex_ridge(3));
    let mut behavior = UniformAveraging;
    let mut session =
        Session::new(&mut env, Box::new(GossipDriver::new(&mut behavior, "no-alloc"))).unwrap();

    // Warm-up: steady-state training buffers plus one full snapshot to
    // size the scratch (per-node blobs, section payloads, output buffer)
    // and seed the delta chain.
    let mut steps = 0;
    while steps < 100 {
        if let StepEvent::GlobalStep { .. } = session.step() {
            steps += 1;
        }
    }
    let meta = Json::obj([("probe", Json::Str("no-alloc".into()))]);
    let mut scratch = CheckpointScratch::new();
    let mut out = Vec::new();
    scratch.encode_full(&meta, session.env(), &mut out).unwrap();
    // An all-nodes-changed delta is the largest payload either emitter
    // produces (full framing plus a 4-byte index per node); warm the
    // shared payload buffer to that worst case before measuring.
    while steps < 110 {
        if let StepEvent::GlobalStep { .. } = session.step() {
            steps += 1;
        }
    }
    scratch.encode_delta(&meta, session.env(), &mut out).unwrap();

    let before = alloc_count();
    let mut measured = 0;
    while measured < 200 {
        match session.step() {
            StepEvent::GlobalStep { .. } => measured += 1,
            other => panic!("unexpected event in steady-state window: {other:?}"),
        }
        match measured % 100 {
            // Deltas mid-cycle (every node changed since the chain last
            // advanced), full snapshots at the cycle boundary.
            50 => scratch.encode_delta(&meta, session.env(), &mut out).unwrap(),
            0 => scratch.encode_full(&meta, session.env(), &mut out).unwrap(),
            _ => {}
        }
    }
    let allocs = alloc_count() - before;
    assert_eq!(
        allocs, 0,
        "{allocs} allocation(s) across 200 steady-state steps with 2 full + 2 delta snapshots"
    );
}
