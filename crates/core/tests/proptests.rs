//! Property-based tests for the NetMax core: policy feasibility over
//! random heterogeneous time matrices, Y_P structure for random feasible
//! policies, EMA tracker behaviour, and the session checkpoint/resume
//! determinism guarantee over random scenarios.

use netmax_core::engine::{
    decode_session_v3, encode_session_v3, reconstruct_chain, Algorithm, CheckpointScratch,
    Scenario, Session, StepEvent, TrainConfig,
};
use netmax_core::gossip_matrix::{build_y, node_probabilities};
use netmax_core::monitor::EmaTimeTracker;
use netmax_core::netmax::{NetMax, NetMaxConfig};
use netmax_core::policy::{PolicyGenerator, PolicySearchConfig};
use netmax_json::{Json, ToJson};
use netmax_linalg::{
    is_doubly_stochastic, is_irreducible, is_nonnegative, is_symmetric,
    second_largest_eigenvalue, Matrix,
};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::{NetworkKind, Topology};
use proptest::prelude::*;

/// Strategy: a random symmetric iteration-time matrix over `m` nodes with
/// entries in [0.05, 5.0].
fn time_matrix(m: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0.05f64..5.0, m * (m - 1) / 2).prop_map(move |vals| {
        let mut t = Matrix::zeros(m, m);
        let mut it = vals.into_iter();
        for i in 0..m {
            for j in (i + 1)..m {
                let v = it.next().unwrap();
                t[(i, j)] = v;
                t[(j, i)] = v;
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For *any* heterogeneous time matrix, the generated policy (when one
    /// exists) is row-stochastic, respects the Eq. 11 floors, equalises
    /// row expected times (Eq. 10), and yields a doubly stochastic,
    /// irreducible Y_P with λ₂ < 1 — the full Theorem-3 pipeline.
    #[test]
    fn generated_policy_always_feasible(times in time_matrix(5)) {
        let m = 5;
        let topo = Topology::fully_connected(m);
        let alpha = 0.1;
        let gen = PolicyGenerator::new(PolicySearchConfig::new(alpha));
        let Some(res) = gen.generate(&times, &topo) else {
            // Legitimate for extreme matrices; nothing further to check.
            return Ok(());
        };
        let p = &res.policy;

        // Row stochasticity + floors.
        for i in 0..m {
            prop_assert!((p.row_sum(i) - 1.0).abs() < 1e-7);
            for j in 0..m {
                if i != j {
                    prop_assert!(
                        p[(i, j)] >= 2.0 * alpha * res.rho - 1e-7,
                        "floor violated at ({i},{j}): {} < {}",
                        p[(i, j)], 2.0 * alpha * res.rho
                    );
                }
            }
        }

        // Eq. 10: equal expected row times.
        let row_time = |i: usize| -> f64 {
            (0..m).filter(|&j| j != i).map(|j| times[(i, j)] * p[(i, j)]).sum()
        };
        let t0 = row_time(0);
        for i in 1..m {
            prop_assert!((row_time(i) - t0).abs() < 1e-5, "row {i} time {} vs {t0}", row_time(i));
        }

        // Y_P structure.
        let p_node = vec![1.0 / m as f64; m];
        let y = build_y(p, &topo, &p_node, alpha, res.rho);
        prop_assert!(is_symmetric(&y, 1e-8));
        prop_assert!(is_nonnegative(&y, 1e-9));
        prop_assert!(is_doubly_stochastic(&y, 1e-6));
        prop_assert!(is_irreducible(&y, 1e-12));
        let l2 = second_largest_eigenvalue(&y);
        prop_assert!(l2 < 1.0 && l2 > 0.0);
        prop_assert!((l2 - res.lambda2).abs() < 1e-9);
    }

    /// Node firing probabilities (Eq. 3) always form a distribution and
    /// are uniform exactly when row expected times are equal.
    #[test]
    fn node_probabilities_form_distribution(times in time_matrix(4)) {
        let m = 4;
        let topo = Topology::fully_connected(m);
        // Uniform policy over neighbours.
        let mut p = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    p[(i, j)] = 1.0 / (m as f64 - 1.0);
                }
            }
        }
        let probs = node_probabilities(&times, &p, &topo);
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(probs.iter().all(|&x| x > 0.0));
    }

    /// The EMA tracker's estimate always lies within the min/max of the
    /// observations it has seen (a convex-combination invariant).
    #[test]
    fn ema_stays_within_observed_range(
        beta in 0.0f64..0.99,
        obs in proptest::collection::vec(0.01f64..100.0, 1..30),
    ) {
        let mut t = EmaTimeTracker::new(2, beta);
        for &o in &obs {
            t.record(0, 1, o);
        }
        let est = t.get(0, 1).unwrap();
        let lo = obs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = obs.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "{est} outside [{lo}, {hi}]");
    }

    /// With β = 0 the tracker reports exactly the latest observation.
    #[test]
    fn beta_zero_tracks_latest(obs in proptest::collection::vec(0.01f64..100.0, 1..20)) {
        let mut t = EmaTimeTracker::new(2, 0.0);
        for &o in &obs {
            t.record(0, 1, o);
        }
        prop_assert!((t.get(0, 1).unwrap() - obs.last().unwrap()).abs() < 1e-12);
    }
}

/// A small random scenario: 2–5 workers, random seed and network regime.
fn small_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..6, 0u64..1000, 0usize..3).prop_map(|(workers, seed, net)| {
        let network = match net {
            0 => NetworkKind::Homogeneous,
            1 => NetworkKind::HeterogeneousStatic,
            _ => NetworkKind::HeterogeneousDynamic,
        };
        Scenario::builder()
            .workers(workers)
            .network(network)
            .workload(WorkloadSpec::convex_ridge(seed % 17))
            .train_config(TrainConfig { seed, max_epochs: 1.5, ..TrainConfig::quick_test() })
            .build()
    })
}

/// NetMax with a monitor period short enough to fire within the tiny runs,
/// so checkpoints capture mid-run policy/tracker state too.
fn netmax_algo() -> NetMax {
    let mut cfg = NetMaxConfig::paper_default(0.05);
    cfg.monitor.period_s = 2.0;
    NetMax::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The checkpoint JSON round-trip guarantee over random scenarios:
    /// `Session::restore(checkpoint-at-step-k)` resumes to a `RunReport`
    /// byte-identical to the uninterrupted run, for arbitrary k.
    #[test]
    fn checkpoint_round_trip_resumes_byte_identically(
        sc in small_scenario(),
        k in 0u64..200,
    ) {
        // Uninterrupted reference run.
        let mut algo = netmax_algo();
        let mut env = sc.build_env();
        let full = {
            let mut session = Session::new(&mut env, algo.driver()).unwrap();
            session.run()
        };

        // Interrupted: step to >= k global steps (or completion),
        // checkpoint through serialized text, restore, finish.
        let mut algo1 = netmax_algo();
        let mut env1 = sc.build_env();
        let text = {
            let mut session = Session::new(&mut env1, algo1.driver()).unwrap();
            while session.env().global_step < k {
                if let StepEvent::Finished { .. } = session.step() {
                    break;
                }
            }
            session.checkpoint().pretty()
        };

        let mut algo2 = netmax_algo();
        let mut env2 = sc.build_env();
        let mut resumed = Session::restore(
            &mut env2,
            algo2.driver(),
            &Json::parse(&text).unwrap(),
        )
        .unwrap();
        let report = resumed.run();
        prop_assert_eq!(
            report.to_json().to_string(),
            full.to_json().to_string(),
            "resume at k={} diverged for {:?}", k, sc
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The binary checkpoint guarantees, over random scenarios and
    /// suspend points:
    /// 1. the direct-from-environment fast path emits bytes identical to
    ///    the `Json`-level v3 transcoder,
    /// 2. decoding yields exactly the v2 logical document,
    /// 3. a base + delta chain reconstructs **bit-identically** to a
    ///    fresh full snapshot taken at the chain's end, and
    /// 4. restoring from the reconstructed bytes resumes to a report
    ///    byte-identical to the uninterrupted run.
    #[test]
    fn binary_checkpoints_and_delta_chains_are_bit_exact(
        sc in small_scenario(),
        k in 0u64..120,
    ) {
        let mut algo = netmax_algo();
        let mut env = sc.build_env();
        let mut session = Session::new(&mut env, algo.driver()).unwrap();
        while session.env().global_step < k {
            if let StepEvent::Finished { .. } = session.step() {
                break;
            }
        }

        // (1) fast path ≡ transcoder, (2) decode ≡ logical v2 document.
        let mut scratch = CheckpointScratch::new();
        let mut base = Vec::new();
        session.checkpoint_binary(&mut scratch, &mut base).unwrap();
        let v2 = session.checkpoint();
        prop_assert_eq!(&base, &encode_session_v3(&v2).unwrap());
        prop_assert_eq!(
            decode_session_v3(&base).unwrap().to_string(),
            v2.to_string()
        );

        // (3) run on, emitting a delta every few steps; the replayed
        // chain must equal a fresh full snapshot bit-for-bit.
        let mut deltas = Vec::new();
        let mut done = false;
        for _ in 0..3 {
            for _ in 0..7 {
                if done {
                    break;
                }
                if let StepEvent::Finished { .. } = session.step() {
                    done = true;
                }
            }
            let mut d = Vec::new();
            session.checkpoint_delta(&mut scratch, &mut d).unwrap();
            deltas.push(d);
        }
        let mut fresh = Vec::new();
        session.checkpoint_binary(&mut CheckpointScratch::new(), &mut fresh).unwrap();
        let rebuilt = reconstruct_chain(&base, &deltas).unwrap();
        prop_assert_eq!(&rebuilt, &fresh);

        // (4) the reconstructed bytes restore and finish identically to
        // the uninterrupted run.
        let full_report = session.run();
        let mut algo2 = netmax_algo();
        let mut env2 = sc.build_env();
        let mut resumed = Session::restore_bytes(&mut env2, algo2.driver(), &rebuilt).unwrap();
        prop_assert_eq!(
            resumed.run().to_json().to_string(),
            full_report.to_json().to_string()
        );
    }
}
