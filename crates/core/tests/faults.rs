//! Engine-level fault injection: membership events on the virtual clock,
//! warm-started rejoins, typed peer errors, masked NetMax policies, and
//! fault-capable checkpoint/resume (v2 schema, v1 still restorable).

use netmax_core::engine::{
    Algorithm, Scenario, Session, SessionError, StepEvent, StopCondition, TrainConfig,
};
use netmax_core::netmax::{NetMax, NetMaxConfig};
use netmax_json::{FromJson, Json, ToJson};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::{FaultPlan, NetworkKind, NodeFault, Straggler};

fn crash_plan(node: usize, crash_s: f64, rejoin_s: Option<f64>) -> FaultPlan {
    FaultPlan {
        node_faults: vec![NodeFault { node, crash_s, rejoin_s }],
        ..FaultPlan::none()
    }
}

fn scenario(seed: u64, faults: FaultPlan) -> Scenario {
    Scenario::builder()
        .workers(4)
        .network(NetworkKind::Homogeneous)
        .workload(WorkloadSpec::convex_ridge(7))
        .train_config(TrainConfig { seed, max_epochs: 4.0, ..TrainConfig::quick_test() })
        .faults(faults)
        .build()
}

fn netmax() -> NetMax {
    NetMax::paper_default(0.05)
}

#[test]
fn membership_events_fire_on_the_virtual_clock() {
    let sc = scenario(1, crash_plan(2, 0.5, Some(1.5)));
    let mut env = sc.build_env();
    let mut algo = netmax();
    let mut session = Session::new(&mut env, algo.driver()).unwrap();
    let mut down_at = None;
    let mut up_at = None;
    let mut donor = None;
    loop {
        match session.step() {
            StepEvent::NodeDown { node, time_s } => {
                assert_eq!(node, 2);
                assert!(down_at.is_none(), "crash fired twice");
                down_at = Some(time_s);
                assert!(!session.env().is_active(2));
            }
            StepEvent::NodeUp { node, time_s, donor: d } => {
                assert_eq!(node, 2);
                up_at = Some(time_s);
                donor = d;
                assert!(session.env().is_active(2));
            }
            StepEvent::GlobalStep { node, .. } if down_at.is_some() && up_at.is_none() => {
                assert_ne!(node, 2, "crashed node completed a step while down");
            }
            StepEvent::Finished { .. } => break,
            _ => {}
        }
    }
    assert_eq!(down_at, Some(0.5));
    assert_eq!(up_at, Some(1.5));
    assert!(donor.is_some(), "three live peers were available to warm-start from");
}

#[test]
fn rejoined_node_warm_starts_from_the_donor_replica() {
    let sc = scenario(2, crash_plan(1, 0.4, Some(1.2)));
    let mut env = sc.build_env();
    let mut algo = netmax();
    let mut session = Session::new(&mut env, algo.driver()).unwrap();
    loop {
        match session.step() {
            StepEvent::NodeUp { node, donor, .. } => {
                let d = donor.expect("live donor");
                assert_eq!(
                    session.env().nodes[node].model.params(),
                    session.env().nodes[d].model.params(),
                    "rejoin must copy the donor replica"
                );
                assert!(session.env().nodes[node].clock >= 1.2, "clock advanced to rejoin time");
                break;
            }
            StepEvent::Finished { .. } => panic!("run ended before the rejoin"),
            _ => {}
        }
    }
}

#[test]
fn crashed_node_clock_freezes_and_report_stays_truthful() {
    let sc = scenario(3, crash_plan(3, 0.5, None));
    let mut env = sc.build_env();
    let mut algo = netmax();
    let report = {
        let mut session = Session::new(&mut env, algo.driver()).unwrap();
        session.run()
    };
    assert!(report.global_steps > 0);
    assert!(report.epochs_completed >= 4.0, "live fleet must still reach the epoch target");
    // The dead node's per-node accounting is reported as-is: a clock far
    // behind the survivors.
    let dead = &report.per_node[3];
    let live_min = report
        .per_node
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != 3)
        .map(|(_, n)| n.clock_s)
        .fold(f64::INFINITY, f64::min);
    assert!(
        dead.clock_s < live_min,
        "dead clock {} should trail the live fleet (min {live_min})",
        dead.clock_s
    );
}

#[test]
fn pull_paths_return_typed_errors_for_bad_or_dead_peers() {
    let sc = scenario(4, crash_plan(1, 0.0, None));
    let mut env = sc.build_env();
    // Out of range: typed error, not a panic.
    let err = env.pull_params(99).unwrap_err();
    assert!(matches!(err, SessionError::NodeUnavailable { .. }), "{err}");
    assert!(err.to_string().contains("out of range"), "{err}");
    // Alive: fine.
    let mut buf = Vec::new();
    env.pull_params_into(0, &mut buf).unwrap();
    assert!(!buf.is_empty());
    // Crash node 1 (the session normally does this) and observe the
    // typed refusal.
    env.set_active(1, false);
    let err = env.pull_params_into(1, &mut buf).unwrap_err();
    assert!(matches!(err, SessionError::NodeUnavailable { .. }), "{err}");
    assert!(err.to_string().contains("down"), "{err}");
}

#[test]
fn stragglers_scale_compute_times() {
    let plain = scenario(5, FaultPlan::none()).build_env();
    let sc = scenario(
        5,
        FaultPlan { stragglers: vec![Straggler { node: 2, factor: 4.0 }], ..FaultPlan::none() },
    );
    let slow = sc.build_env();
    let a = plain.nominal_compute_times();
    let b = slow.nominal_compute_times();
    assert_eq!(a[0], b[0]);
    assert!((b[2] / a[2] - 4.0).abs() < 1e-12, "straggler factor not applied");
}

#[test]
fn netmax_policy_masks_the_dead_node_after_a_monitor_round() {
    // Heterogeneous fleet, short monitor period so masked rounds fire
    // after the crash; node 3 dies early and never comes back.
    let sc = Scenario::builder()
        .workers(4)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::convex_ridge(7))
        .train_config(TrainConfig { seed: 6, max_epochs: 6.0, ..TrainConfig::quick_test() })
        .faults(crash_plan(3, 1.0, None))
        .build();
    let mut cfg = NetMaxConfig::paper_default(0.05);
    cfg.monitor.period_s = 1.5;
    let mut algo = NetMax::new(cfg);
    let mut env = sc.build_env();
    let _ = {
        let mut session = Session::new(&mut env, algo.driver()).unwrap();
        session.run()
    };
    assert!(algo.policies_applied() > 0, "monitor produced no policy");
    let p = algo.current_policy().expect("policy exists");
    for i in 0..3 {
        assert_eq!(p[(i, 3)], 0.0, "live node {i} still steered to the dead node");
        assert_eq!(p[(3, i)], 0.0);
        assert!((p.row_sum(i) - 1.0).abs() < 1e-6, "live row {i} not stochastic");
    }
    assert_eq!(p[(3, 3)], 1.0, "dead row must be identity");
}

#[test]
fn faulted_checkpoint_resume_is_byte_identical_mid_churn() {
    // Crash at 0.5, rejoin at 1.5; checkpoint *between* the two events so
    // the restored session must carry the down state and still apply the
    // rejoin.
    let sc = scenario(7, crash_plan(2, 0.5, Some(1.5)));

    let full = {
        let mut env = sc.build_env();
        let mut algo = netmax();
        let mut session = Session::new(&mut env, algo.driver()).unwrap();
        session.run()
    };

    let mut env = sc.build_env();
    let mut algo = netmax();
    let mut session = Session::new(&mut env, algo.driver()).unwrap();
    let mut saw_down = false;
    loop {
        match session.step() {
            StepEvent::NodeDown { .. } => saw_down = true,
            StepEvent::NodeUp { .. } => panic!("checkpoint must precede the rejoin"),
            StepEvent::GlobalStep { .. } if saw_down => break,
            _ => {}
        }
    }
    let text = session.checkpoint().pretty();
    assert!(text.contains("session-checkpoint/v2"));
    drop(session);

    let mut env2 = sc.build_env();
    let mut algo2 = netmax();
    let mut resumed =
        Session::restore(&mut env2, algo2.driver(), &Json::parse(&text).unwrap()).unwrap();
    assert!(!resumed.env().is_active(2), "restored session must carry the down state");
    let report = resumed.run();
    assert_eq!(
        report.to_json().to_string(),
        full.to_json().to_string(),
        "checkpoint mid-churn + resume must equal the uninterrupted run"
    );
}

#[test]
fn v1_checkpoints_still_restore() {
    // Emulate a pre-PR checkpoint: take a fault-free v2 document, strip
    // the membership fields, and tag it v1 — exactly the shape old
    // documents have.
    let sc = scenario(8, FaultPlan::none());
    let full = {
        let mut env = sc.build_env();
        let mut algo = netmax();
        let mut session = Session::new(&mut env, algo.driver()).unwrap();
        session.run()
    };

    let mut env = sc.build_env();
    let mut algo = netmax();
    let mut session = Session::new(&mut env, algo.driver()).unwrap();
    let mut steps = 0;
    while steps < 20 {
        if let StepEvent::GlobalStep { .. } = session.step() {
            steps += 1;
        }
    }
    let mut doc = session.checkpoint();
    drop(session);
    if let Json::Obj(pairs) = &mut doc {
        pairs.retain(|(k, _)| k != "active" && k != "membership_next");
        for (k, v) in pairs.iter_mut() {
            if k == "schema" {
                *v = Json::Str("netmax-core/session-checkpoint/v1".into());
            }
        }
    }
    let text = doc.pretty();
    assert!(text.contains("session-checkpoint/v1"));

    let mut env2 = sc.build_env();
    let mut algo2 = netmax();
    let mut resumed =
        Session::restore(&mut env2, algo2.driver(), &Json::parse(&text).unwrap()).unwrap();
    let report = resumed.run();
    assert_eq!(
        report.to_json().to_string(),
        full.to_json().to_string(),
        "a v1 checkpoint must resume byte-identically"
    );
}

#[test]
fn v1_checkpoints_are_rejected_under_a_nonempty_fault_plan() {
    // A v1 document predates fault-capable sessions; restoring one into
    // a faulted scenario cannot reconstruct membership safely (the
    // restored driver queue could carry a crashed node's in-flight
    // events), so it must fail with a typed error instead.
    let plain = scenario(23, FaultPlan::none());
    let mut env = plain.build_env();
    let mut algo = netmax();
    let mut session = Session::new(&mut env, algo.driver()).unwrap();
    let mut steps = 0;
    while steps < 10 {
        if let StepEvent::GlobalStep { .. } = session.step() {
            steps += 1;
        }
    }
    let mut doc = session.checkpoint();
    drop(session);
    if let Json::Obj(pairs) = &mut doc {
        pairs.retain(|(k, _)| k != "active" && k != "membership_next");
        for (k, v) in pairs.iter_mut() {
            if k == "schema" {
                *v = Json::Str("netmax-core/session-checkpoint/v1".into());
            }
        }
    }
    let faulted = scenario(23, crash_plan(1, 5.0, None));
    let mut env2 = faulted.build_env();
    let mut algo2 = netmax();
    let err = match Session::restore(&mut env2, algo2.driver(), &doc) {
        Err(e) => e,
        Ok(_) => panic!("v1 + fault plan must be rejected"),
    };
    assert!(matches!(err, SessionError::BadCheckpoint(_)), "{err}");
    assert!(err.to_string().contains("fault plan"), "{err}");
}

#[test]
fn cross_tier_resume_is_rejected() {
    use netmax_ml::NumericsTier;
    // Record a strict-tier checkpoint, then try to resume it into a
    // session configured for the fast tier (and vice versa): both must
    // fail with a typed error naming the two tiers, because the resumed
    // trajectory would belong to neither.
    let strict_sc = scenario(31, FaultPlan::none());
    let mut env = strict_sc.build_env();
    let mut algo = netmax();
    let mut session = Session::new(&mut env, algo.driver()).unwrap();
    let mut steps = 0;
    while steps < 10 {
        if let StepEvent::GlobalStep { .. } = session.step() {
            steps += 1;
        }
    }
    let doc = session.checkpoint();
    assert!(doc.pretty().contains("\"strict\""), "checkpoint must record its tier");
    drop(session);

    let mut fast_sc = scenario(31, FaultPlan::none());
    fast_sc.cfg_mut().tier = NumericsTier::Fast;
    let mut env2 = fast_sc.build_env();
    let mut algo2 = netmax();
    let err = match Session::restore(&mut env2, algo2.driver(), &doc) {
        Err(e) => e,
        Ok(_) => panic!("strict checkpoint into a fast session must be rejected"),
    };
    assert!(matches!(err, SessionError::BadCheckpoint(_)), "{err}");
    assert!(err.to_string().contains("strict") && err.to_string().contains("fast"), "{err}");

    // A fast-tier checkpoint resumes fine into a fast session, and a
    // pre-tier (stripped) document still restores as strict.
    let mut env3 = fast_sc.build_env();
    let mut algo3 = netmax();
    let mut session = Session::new(&mut env3, algo3.driver()).unwrap();
    let mut steps = 0;
    while steps < 10 {
        if let StepEvent::GlobalStep { .. } = session.step() {
            steps += 1;
        }
    }
    let fast_doc = session.checkpoint();
    drop(session);
    let mut env4 = fast_sc.build_env();
    let mut algo4 = netmax();
    assert!(Session::restore(&mut env4, algo4.driver(), &fast_doc).is_ok());

    let mut legacy = doc.clone();
    if let Json::Obj(pairs) = &mut legacy {
        pairs.retain(|(k, _)| k != "tier");
    }
    let mut env5 = strict_sc.build_env();
    let mut algo5 = netmax();
    assert!(
        Session::restore(&mut env5, algo5.driver(), &legacy).is_ok(),
        "pre-tier checkpoints restore as strict"
    );
}

#[test]
fn unknown_checkpoint_schema_is_a_typed_error() {
    let sc = scenario(9, FaultPlan::none());
    let mut env = sc.build_env();
    let mut algo = netmax();
    let doc = Json::parse(
        r#"{"schema":"netmax-core/session-checkpoint/v99","algorithm":"netmax"}"#,
    )
    .unwrap();
    let err = match Session::restore(&mut env, algo.driver(), &doc) {
        Err(e) => e,
        Ok(_) => panic!("v99 must be rejected"),
    };
    assert!(matches!(err, SessionError::BadCheckpoint(_)), "{err}");
    assert!(err.to_string().contains("v99"), "{err}");
}

#[test]
fn fault_capable_scenario_round_trips_through_json() {
    use netmax_net::{LinkDynamics, LinkFault, LinkFaultKind, MarkovConfig};
    let sc = Scenario::builder()
        .workers(4)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::convex_ridge(3))
        .dynamics(LinkDynamics::MarkovModulated(MarkovConfig::fast_drift()))
        .faults(FaultPlan {
            link_faults: vec![LinkFault {
                a: 0,
                b: 2,
                start_s: 5.0,
                end_s: 9.5,
                kind: LinkFaultKind::Outage,
            }],
            node_faults: vec![NodeFault { node: 1, crash_s: 3.0, rejoin_s: Some(7.0) }],
            stragglers: vec![Straggler { node: 2, factor: 2.5 }],
        })
        .max_epochs(1.0)
        .seed(11)
        .build();
    let text = sc.to_json().pretty();
    assert!(text.contains("dynamics") && text.contains("faults"));
    let back = Scenario::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, sc);
    // And a pre-elastic document (no dynamics/faults keys) still parses
    // to an empty plan.
    let plain = scenario(12, FaultPlan::none());
    let plain_text = plain.to_json().pretty();
    assert!(!plain_text.contains("\"faults\""), "empty plans must not change old documents");
    let back = Scenario::from_json(&Json::parse(&plain_text).unwrap()).unwrap();
    assert!(back.fault_plan().is_empty());
}

#[test]
fn fault_free_run_matches_a_plain_scenario_byte_for_byte() {
    // Installing an *empty* fault plan must not perturb a single bit of
    // the simulation (the membership machinery is pure overhead-free
    // scaffolding until faults exist).
    let a = scenario(13, FaultPlan::none());
    let b = Scenario::builder()
        .workers(4)
        .network(NetworkKind::Homogeneous)
        .workload(WorkloadSpec::convex_ridge(7))
        .train_config(TrainConfig { seed: 13, max_epochs: 4.0, ..TrainConfig::quick_test() })
        .build();
    let run = |sc: &Scenario| {
        let mut env = sc.build_env();
        let mut algo = netmax();
        let mut session = Session::new(&mut env, algo.driver()).unwrap();
        session.run()
    };
    assert_eq!(run(&a).to_json().to_string(), run(&b).to_json().to_string());
}

#[test]
fn rejoin_after_an_in_flight_event_does_not_double_the_iteration_chain() {
    // The node crashes and rejoins *while its pre-crash iteration is
    // still in flight*. The stale completion must be purged at crash
    // time: were it left to a lazy active-flag check at pop time, the
    // rejoined (again-active) node would process it as valid and run two
    // concurrent iteration chains — roughly doubling its step rate.
    let sc = scenario(20, crash_plan(1, 0.001, Some(0.002)));
    let mut env = sc.build_env();
    let mut algo = netmax();
    let _ = {
        let mut session = Session::new(&mut env, algo.driver()).unwrap();
        session.run()
    };
    let churned = env.nodes[1].local_steps;
    let others_max = env
        .nodes
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != 1)
        .map(|(_, n)| n.local_steps)
        .max()
        .unwrap();
    assert!(
        churned <= others_max + others_max / 5,
        "churned node ran {churned} steps vs fleet max {others_max} — duplicated chain?"
    );
}

#[test]
fn whole_fleet_crash_still_reports_the_frozen_state_truthfully() {
    // Every worker dies: drivers exhaust and the forced final sample
    // must read the frozen replicas, not report a vacuous perfect loss.
    let faults = FaultPlan {
        node_faults: (0..4)
            .map(|node| NodeFault { node, crash_s: 0.5, rejoin_s: None })
            .collect(),
        ..FaultPlan::none()
    };
    let sc = scenario(21, faults);
    let mut env = sc.build_env();
    let mut algo = netmax();
    let report = {
        let mut session = Session::new(&mut env, algo.driver()).unwrap();
        session.run()
    };
    assert!(report.global_steps > 0, "some training happened before the crash");
    assert!(
        report.final_train_loss > 0.0 && report.final_train_loss.is_finite(),
        "an all-dead fleet must report its frozen loss, got {}",
        report.final_train_loss
    );
    assert!(report.epochs_completed > 0.0, "frozen epoch progress must be reported");
}

#[test]
fn monitor_chain_restarts_after_a_whole_fleet_outage() {
    // All four workers crash in an overlapping window and rejoin: the
    // monitor chain (drained during the outage — it cannot tick against
    // a frozen clock) must re-arm on the first rejoin so the policy
    // resumes adapting.
    let faults = FaultPlan {
        node_faults: (0..4)
            .map(|node| NodeFault {
                node,
                crash_s: 0.4 + 0.02 * node as f64,
                rejoin_s: Some(1.5 + 0.05 * node as f64),
            })
            .collect(),
        ..FaultPlan::none()
    };
    let sc = scenario(22, faults);
    let mut cfg = NetMaxConfig::paper_default(0.05);
    cfg.monitor.period_s = 0.5;
    let mut algo = NetMax::new(cfg);
    let mut env = sc.build_env();
    let mut session = Session::new(&mut env, algo.driver()).unwrap();
    let mut last_up: Option<f64> = None;
    let mut monitor_after_rejoin = false;
    loop {
        match session.step() {
            StepEvent::NodeUp { time_s, .. } => last_up = Some(time_s),
            StepEvent::MonitorRound { time_s } if last_up == Some(1.65) => {
                assert!(time_s > 1.65);
                monitor_after_rejoin = true;
            }
            StepEvent::Finished { report } => {
                assert!(report.epochs_completed >= sc.cfg().max_epochs);
                break;
            }
            _ => {}
        }
    }
    assert!(
        monitor_after_rejoin,
        "the monitor never fired again after the fleet came back"
    );
}

#[test]
fn stop_conditions_progress_past_a_crash() {
    // MaxEpochs is a mean over *active* nodes: a crashed node's frozen
    // epoch counter must not stall the stop condition.
    let mut sc = scenario(14, crash_plan(0, 0.3, None));
    sc.cfg_mut().stop = Some(StopCondition::MaxEpochs(3.0));
    sc.cfg_mut().max_wall_clock_s = 1e6;
    let mut env = sc.build_env();
    let mut algo = netmax();
    let report = {
        let mut session = Session::new(&mut env, algo.driver()).unwrap();
        session.run()
    };
    assert!(report.epochs_completed >= 3.0);
    assert!(report.wall_clock_s < 1e6, "run must stop on epochs, not the safety net");
}

#[test]
fn elastic_network_in_env_serves_the_fault_plan() {
    use netmax_net::LinkFault;
    use netmax_net::LinkFaultKind;
    let sc = Scenario::builder()
        .workers(4)
        .network(NetworkKind::Homogeneous)
        .workload(WorkloadSpec::convex_ridge(3))
        .faults(FaultPlan {
            link_faults: vec![LinkFault {
                a: 0,
                b: 1,
                start_s: 10.0,
                end_s: 20.0,
                kind: LinkFaultKind::Degrade(8.0),
            }],
            ..FaultPlan::none()
        })
        .max_epochs(1.0)
        .seed(15)
        .build();
    let env = sc.build_env();
    let healthy = env.network.comm_time(0, 1, 1_000_000, 5.0);
    let degraded = env.network.comm_time(0, 1, 1_000_000, 15.0);
    assert!((degraded / healthy - 8.0).abs() < 1e-9, "{degraded} vs {healthy}");
}
