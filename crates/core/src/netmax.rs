//! NetMax — the consensus SGD worker algorithm (Algorithm 2) wired to the
//! Network Monitor (Algorithm 1) and policy generator (Algorithm 3).
//!
//! Per iteration, a worker:
//! 1. samples a neighbour `m` with probability `p_{i,m}` (line 9),
//! 2. requests `x_m` and *concurrently* computes local gradients (10–11),
//! 3. applies the second-step update
//!    `x_i ← x_i − α · (ρ/2) · (d_{i,m}+d_{m,i})/p_{i,m} · (x_i − x_m)`
//!    (lines 13–14) — note the `1/p_{i,m}` factor: neighbours chosen
//!    *rarely* are merged *strongly*, which is what lets NetMax starve
//!    slow links of traffic without starving them of influence (§V-H),
//! 4. EMA-updates its iteration-time vector (line 16).
//!
//! Every `Ts` the Network Monitor collects the EMA matrix and disseminates
//! a freshly optimised `(P, ρ)`.

use crate::engine::session::{matrix_from_json, matrix_to_json};
use crate::engine::{Algorithm, Environment, GossipBehavior, GossipDriver, PeerChoice, SessionDriver};
use crate::monitor::{EmaTimeTracker, MonitorConfig, NetworkMonitor};
use crate::sparse_policy::{SparsePolicy, DENSE_CONTROL_THRESHOLD};
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The active policy in whichever representation the fleet size calls
/// for: dense matrices at or below [`DENSE_CONTROL_THRESHOLD`] nodes
/// (the historical path, byte-for-byte), edge-set rows above it.
#[derive(Debug, Clone)]
pub enum PolicyView {
    /// Dense `M × M` policy from [`NetworkMonitor::round`].
    Dense(Matrix),
    /// Edge-set policy from [`NetworkMonitor::round_sparse`].
    Sparse(SparsePolicy),
}

impl PolicyView {
    /// `p_{i,m}` under either representation.
    pub fn get(&self, i: usize, m: usize) -> f64 {
        match self {
            PolicyView::Dense(p) => p[(i, m)],
            PolicyView::Sparse(p) => p.get(i, m),
        }
    }
}

/// How the second-step update weights the pulled model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MergeWeighting {
    /// The paper's rule: `w = αρ(d_{i,m}+d_{m,i}) / (2 p_{i,m})` —
    /// rarely-selected neighbours merge strongly (Algorithm 2 line 13).
    InverseProbability,
    /// Fixed weight regardless of selection probability (what AD-PSGD
    /// does with 0.5); exists for the weighting ablation that isolates
    /// the §V-H effect.
    Fixed(f64),
}

/// NetMax configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetMaxConfig {
    /// Network Monitor settings (period `Ts`, EMA β, search resolution).
    pub monitor: MonitorConfig,
    /// When `false` the monitor never runs and the initial uniform policy
    /// is kept — the "uniform" arm of the Fig. 7 ablation.
    pub adaptive: bool,
    /// Merge weight used before the first policy arrives (and forever in
    /// uniform mode). Plays the role of `αρ/p` with the uniform policy;
    /// 0.4 behaves like slightly-damped AD-PSGD averaging.
    pub initial_merge_weight: f64,
    /// Upper clamp on the merge weight `αρ(d+d)/(2p)` for numerical
    /// safety under stale policies (feasible policies keep it < 0.5).
    pub max_merge_weight: f64,
    /// Second-step weighting rule (paper default: inverse probability).
    pub weighting: MergeWeighting,
}

impl NetMaxConfig {
    /// Paper defaults (Ts = 120 s, β = 0.5, K = R = 10), for learning
    /// rate `alpha`.
    pub fn paper_default(alpha: f64) -> Self {
        Self {
            monitor: MonitorConfig::paper_default(alpha),
            adaptive: true,
            initial_merge_weight: 0.4,
            max_merge_weight: 0.9,
            weighting: MergeWeighting::InverseProbability,
        }
    }

    /// The non-adaptive (fixed uniform policy) variant.
    pub fn uniform(alpha: f64) -> Self {
        Self { adaptive: false, ..Self::paper_default(alpha) }
    }
}

/// The NetMax algorithm.
pub struct NetMax {
    cfg: NetMaxConfig,
    monitor: NetworkMonitor,
    tracker: Option<EmaTimeTracker>,
    policy: Option<PolicyView>,
    rho: Option<f64>,
    policies_applied: u64,
}

impl NetMax {
    /// Creates a NetMax instance.
    pub fn new(cfg: NetMaxConfig) -> Self {
        let monitor = NetworkMonitor::new(cfg.monitor.clone());
        Self { cfg, monitor, tracker: None, policy: None, rho: None, policies_applied: 0 }
    }

    /// Convenience constructor with paper defaults.
    pub fn paper_default(alpha: f64) -> Self {
        Self::new(NetMaxConfig::paper_default(alpha))
    }

    /// Number of policy updates applied during the last run.
    pub fn policies_applied(&self) -> u64 {
        self.policies_applied
    }

    /// The currently active dense policy matrix, if the monitor has
    /// produced one (fleets beyond [`DENSE_CONTROL_THRESHOLD`] nodes
    /// carry an edge-set policy instead — see
    /// [`NetMax::current_policy_view`]).
    pub fn current_policy(&self) -> Option<&Matrix> {
        match &self.policy {
            Some(PolicyView::Dense(p)) => Some(p),
            _ => None,
        }
    }

    /// The currently active policy under either representation.
    pub fn current_policy_view(&self) -> Option<&PolicyView> {
        self.policy.as_ref()
    }

    fn reset(&mut self, n: usize) {
        self.tracker = Some(EmaTimeTracker::for_fleet(n, self.cfg.monitor.beta));
        self.monitor = NetworkMonitor::new(self.cfg.monitor.clone());
        self.policy = None;
        self.rho = None;
        self.policies_applied = 0;
    }

    /// Samples from the policy row of node `i` (neighbours + self). Mass
    /// a *stale* policy still assigns to a since-crashed peer is skipped
    /// — those draws fall through to the self-step tail, so no worker
    /// ever commits an iteration to a dead node (the next masked monitor
    /// round removes the mass entirely).
    fn sample_policy_row(&self, env: &mut Environment, i: usize) -> PeerChoice {
        let policy = self.policy.as_ref().expect("sample_policy_row without policy");
        let u: f64 = env.node_rng(i).gen();
        let mut acc = 0.0;
        match policy {
            PolicyView::Dense(policy) => {
                let n = env.num_nodes();
                for m in 0..n {
                    let p = policy[(i, m)];
                    if p <= 0.0 || (m != i && !env.is_active(m)) {
                        continue;
                    }
                    acc += p;
                    if u < acc {
                        return if m == i { PeerChoice::SelfStep } else { PeerChoice::Peer(m) };
                    }
                }
            }
            PolicyView::Sparse(policy) => {
                // The stored row visits the support in the same ascending
                // order the dense scan does (diagonal in sorted position),
                // so one uniform draw lands on the same choice either way.
                for &(m, p) in policy.row(i) {
                    if p <= 0.0 || (m != i && !env.is_active(m)) {
                        continue;
                    }
                    acc += p;
                    if u < acc {
                        return if m == i { PeerChoice::SelfStep } else { PeerChoice::Peer(m) };
                    }
                }
            }
        }
        // Round-off tail (or mass stranded on dead peers): fall back to
        // self.
        PeerChoice::SelfStep
    }
}

impl GossipBehavior for NetMax {
    fn on_start(&mut self, env: &mut Environment) {
        self.reset(env.num_nodes());
    }

    fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice {
        if self.policy.is_some() {
            self.sample_policy_row(env, i)
        } else {
            // Initial uniform policy of Algorithm 2 line 2: each of the M
            // entries (self included) gets equal probability; on sparse
            // graphs the mass is spread over {self} ∪ active neighbours
            // (with everyone alive this is the classic full-degree draw).
            let degree = env.active_degree(i);
            let k = env.node_rng(i).gen_range(0..=degree);
            if k == degree {
                PeerChoice::SelfStep
            } else {
                PeerChoice::Peer(env.nth_active_neighbor(i, k))
            }
        }
    }

    fn merge(&mut self, env: &mut Environment, i: usize, m: usize, pulled: &[f32]) {
        let w = match self.cfg.weighting {
            MergeWeighting::Fixed(w) => w,
            MergeWeighting::InverseProbability => match (&self.policy, self.rho) {
                (Some(policy), Some(rho)) => {
                    let p_im = policy.get(i, m);
                    let d_sum = env.topology.d(i, m) + env.topology.d(m, i);
                    if p_im > 0.0 {
                        let alpha = env.lr(i);
                        (alpha * rho * d_sum / (2.0 * p_im)).min(self.cfg.max_merge_weight)
                    } else {
                        // Selected despite zero probability (cannot happen
                        // via sampling); merge conservatively.
                        self.cfg.initial_merge_weight
                    }
                }
                _ => self.cfg.initial_merge_weight,
            },
        };
        netmax_ml::params::blend(w as f32, env.nodes[i].model.params_mut(), pulled);
    }

    fn on_iteration(&mut self, _env: &Environment, i: usize, peer: Option<usize>, t: f64) {
        if let (Some(tracker), Some(m)) = (self.tracker.as_mut(), peer) {
            tracker.record(i, m, t);
        }
    }

    fn monitor_period(&self) -> Option<f64> {
        if self.cfg.adaptive {
            Some(self.cfg.monitor.period_s)
        } else {
            None
        }
    }

    fn on_monitor(&mut self, env: &mut Environment, _now: f64) {
        let Some(tracker) = self.tracker.as_ref() else {
            return;
        };
        let alpha = env.workload.optim.lr_at(env.mean_epoch());
        if env.num_nodes() > DENSE_CONTROL_THRESHOLD {
            if let Some(res) =
                self.monitor.round_sparse(tracker, &env.topology, alpha, env.active_flags())
            {
                self.policy = Some(PolicyView::Sparse(res.policy));
                self.rho = Some(res.rho);
                self.policies_applied += 1;
            }
        } else if let Some(res) =
            self.monitor.round(tracker, &env.topology, alpha, env.active_flags())
        {
            self.policy = Some(PolicyView::Dense(res.policy));
            self.rho = Some(res.rho);
            self.policies_applied += 1;
        }
    }

    fn checkpoint_state(&self) -> Json {
        Json::obj([
            (
                "tracker",
                match &self.tracker {
                    Some(t) => t.checkpoint(),
                    None => Json::Null,
                },
            ),
            ("monitor", self.monitor.checkpoint()),
            (
                "policy",
                match &self.policy {
                    // Dense policies keep the historical checkpoint shape.
                    Some(PolicyView::Dense(p)) => matrix_to_json(p),
                    Some(PolicyView::Sparse(p)) => sparse_policy_to_json(p),
                    None => Json::Null,
                },
            ),
            ("rho", self.rho.to_json()),
            ("policies_applied", self.policies_applied.to_json()),
        ])
    }

    fn restore_state(&mut self, _env: &Environment, state: &Json) -> Result<(), JsonError> {
        self.tracker = match state.field("tracker")? {
            Json::Null => None,
            t => Some(EmaTimeTracker::restore(t)?),
        };
        self.monitor.restore(state.field("monitor")?)?;
        self.policy = match state.field("policy")? {
            Json::Null => None,
            p if p.get("data").is_some() => Some(PolicyView::Dense(matrix_from_json(p)?)),
            p => Some(PolicyView::Sparse(sparse_policy_from_json(p)?)),
        };
        self.rho = Option::from_json(state.field("rho")?)?;
        self.policies_applied = u64::from_json(state.field("policies_applied")?)?;
        Ok(())
    }
}

/// Checkpoint form of an edge-set policy: `{n, rows: [[[j, p], ...], ...]}`
/// — distinguished from the dense matrix shape by the absence of a `data`
/// field.
fn sparse_policy_to_json(p: &SparsePolicy) -> Json {
    Json::obj([
        ("n", p.len().to_json()),
        (
            "rows",
            Json::Arr(
                (0..p.len())
                    .map(|i| {
                        Json::Arr(
                            p.row(i)
                                .iter()
                                .map(|&(j, v)| Json::Arr(vec![j.to_json(), v.to_json()]))
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Inverse of [`sparse_policy_to_json`].
fn sparse_policy_from_json(v: &Json) -> Result<SparsePolicy, JsonError> {
    let n = usize::from_json(v.field("n")?)?;
    let Json::Arr(rows_json) = v.field("rows")? else {
        return Err(JsonError::schema("sparse policy rows must be an array".into()));
    };
    if rows_json.len() != n {
        return Err(JsonError::schema("sparse policy row count mismatch".into()));
    }
    let mut rows = Vec::with_capacity(n);
    for row_json in rows_json {
        let Json::Arr(entries) = row_json else {
            return Err(JsonError::schema("sparse policy row must be an array".into()));
        };
        let mut row = Vec::with_capacity(entries.len());
        for e in entries {
            let Json::Arr(pair) = e else {
                return Err(JsonError::schema("sparse policy entry must be [j, p]".into()));
            };
            if pair.len() != 2 {
                return Err(JsonError::schema("sparse policy entry must be [j, p]".into()));
            }
            row.push((usize::from_json(&pair[0])?, f64::from_json(&pair[1])?));
        }
        rows.push(row);
    }
    Ok(SparsePolicy::from_rows(n, rows))
}

impl Algorithm for NetMax {
    fn name(&self) -> &'static str {
        if self.cfg.adaptive {
            "netmax"
        } else {
            "netmax-uniform"
        }
    }

    fn driver(&mut self) -> Box<dyn SessionDriver + '_> {
        let name = self.name();
        Box::new(GossipDriver::new(self, name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Scenario, TrainConfig};
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    fn scenario(seed: u64, kind: NetworkKind) -> Scenario {
        Scenario::builder()
            .workers(4)
            .network(kind)
            .workload(WorkloadSpec::convex_ridge(7))
            .train_config(TrainConfig { seed, max_epochs: 3.0, ..TrainConfig::quick_test() })
            .build()
    }

    #[test]
    fn netmax_trains_to_completion() {
        let sc = scenario(1, NetworkKind::Homogeneous);
        let mut algo = NetMax::paper_default(0.05);
        let report = sc.run_with(&mut algo);
        assert!(report.epochs_completed >= 3.0);
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first, "loss should drop");
    }

    #[test]
    fn netmax_is_deterministic() {
        let sc = scenario(5, NetworkKind::HeterogeneousDynamic);
        let r1 = sc.run_with(&mut NetMax::paper_default(0.05));
        let r2 = sc.run_with(&mut NetMax::paper_default(0.05));
        assert_eq!(r1.wall_clock_s, r2.wall_clock_s);
        assert_eq!(r1.final_train_loss, r2.final_train_loss);
        assert_eq!(r1.global_steps, r2.global_steps);
    }

    #[test]
    fn adaptive_policy_kicks_in_on_heterogeneous_network() {
        // Short monitor period so policies fire within the test run.
        let sc = scenario(3, NetworkKind::HeterogeneousDynamic);
        let mut cfg = NetMaxConfig::paper_default(0.05);
        cfg.monitor.period_s = 2.0;
        let mut algo = NetMax::new(cfg);
        let _ = sc.run_with(&mut algo);
        assert!(
            algo.policies_applied() > 0,
            "monitor should have produced at least one policy"
        );
        let p = algo.current_policy().expect("policy exists");
        for i in 0..4 {
            assert!((p.row_sum(i) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_variant_never_updates_policy() {
        let sc = scenario(3, NetworkKind::HeterogeneousDynamic);
        let mut algo = NetMax::new(NetMaxConfig::uniform(0.05));
        let _ = sc.run_with(&mut algo);
        assert_eq!(algo.policies_applied(), 0);
        assert!(algo.current_policy().is_none());
        assert_eq!(algo.name(), "netmax-uniform");
    }

    #[test]
    fn replicas_reach_consensus_neighbourhood() {
        let sc = scenario(9, NetworkKind::Homogeneous);
        let mut algo = NetMax::paper_default(0.05);
        let report = sc.run_with(&mut algo);
        let first = report.samples.first().unwrap().consensus_diameter;
        let last = report.samples.last().unwrap().consensus_diameter;
        assert!(last < first, "consensus diameter should shrink: {first} -> {last}");
    }
}
