//! Policy diagnostics: the observability layer an operator of a NetMax
//! deployment would want.
//!
//! Given a policy `P` and the iteration-time matrix it was optimised for,
//! [`PolicyAudit`] reports the quantities that explain *why* the policy
//! looks the way it does: the predicted mean iteration time versus
//! uniform selection, the mixing rate (spectral gap of `Y_P`), the
//! slowest-mixing worker partition (the communication bottleneck, from
//! the sign cut of the second eigenvector), and per-link usage shares.

use crate::gossip_matrix::build_y;
use crate::policy::PolicyResult;
use netmax_linalg::{symmetric_eigen, Matrix};
use netmax_net::Topology;

/// A structured audit of one communication policy.
#[derive(Debug, Clone)]
pub struct PolicyAudit {
    /// Expected per-iteration communication time under the policy (s).
    pub expected_iteration_s: f64,
    /// Expected per-iteration time if neighbours were selected uniformly.
    pub uniform_iteration_s: f64,
    /// λ₂ of `Y_P`.
    pub lambda2: f64,
    /// Mixing rate `1 − λ₂`.
    pub spectral_gap: f64,
    /// The two slowest-mixing worker groups (bottleneck cut).
    pub bottleneck: (Vec<usize>, Vec<usize>),
    /// Total probability mass each node places on its diagonal
    /// (self-selection — idle iterations).
    pub self_selection: Vec<f64>,
    /// Fraction of selection mass on outlier links (strictly slower than
    /// the 75th-percentile link time) — the slowed links of the paper's
    /// dynamic regime.
    pub slow_link_mass: f64,
}

impl PolicyAudit {
    /// Speed advantage of the policy over uniform selection (>1 = faster).
    pub fn iteration_speedup(&self) -> f64 {
        if self.expected_iteration_s > 0.0 {
            self.uniform_iteration_s / self.expected_iteration_s
        } else {
            f64::INFINITY
        }
    }
}

/// Audits a generated policy against the time matrix it was built from.
///
/// # Panics
/// Panics on shape mismatches.
pub fn audit_policy(
    res: &PolicyResult,
    times: &Matrix,
    topo: &Topology,
    alpha: f64,
) -> PolicyAudit {
    let m = topo.len();
    assert_eq!(times.rows(), m, "times shape mismatch");
    assert_eq!(res.policy.rows(), m, "policy shape mismatch");
    let p = &res.policy;

    // Expected per-iteration comm time, averaged over nodes.
    let expected = (0..m)
        .map(|i| {
            (0..m)
                .filter(|&j| j != i)
                .map(|j| times[(i, j)] * p[(i, j)])
                .sum::<f64>()
        })
        .sum::<f64>()
        / m as f64;
    let uniform = (0..m)
        .map(|i| {
            let nbrs = topo.degree(i).max(1) as f64;
            (0..m)
                .filter(|&j| topo.is_edge(i, j))
                .map(|j| times[(i, j)] / nbrs)
                .sum::<f64>()
        })
        .sum::<f64>()
        / m as f64;

    let p_node = vec![1.0 / m as f64; m];
    let y = build_y(p, topo, &p_node, alpha, res.rho);
    let eig = symmetric_eigen(&y);
    let lambda2 = eig.values.get(1).copied().unwrap_or(0.0);
    let bottleneck = eig.bottleneck_cut();

    let self_selection: Vec<f64> = (0..m).map(|i| p[(i, i)]).collect();

    // Mass on outlier links: strictly slower than the 75th percentile.
    let mut link_times: Vec<f64> = Vec::new();
    for i in 0..m {
        for j in 0..m {
            if i != j && topo.is_edge(i, j) {
                link_times.push(times[(i, j)]);
            }
        }
    }
    link_times.sort_by(f64::total_cmp);
    let cut = link_times[(link_times.len() * 3) / 4];
    let mut slow_mass = 0.0;
    let mut total_mass = 0.0;
    for i in 0..m {
        for j in 0..m {
            if i != j && topo.is_edge(i, j) {
                total_mass += p[(i, j)];
                if times[(i, j)] > cut {
                    slow_mass += p[(i, j)];
                }
            }
        }
    }

    PolicyAudit {
        expected_iteration_s: expected,
        uniform_iteration_s: uniform,
        lambda2,
        spectral_gap: 1.0 - lambda2,
        bottleneck,
        self_selection,
        slow_link_mass: if total_mass > 0.0 { slow_mass / total_mass } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PolicyGenerator, PolicySearchConfig};

    /// Two-island time matrix with one severely slowed cross link.
    fn slowed_times(m: usize, per: usize, factor: f64) -> Matrix {
        let mut t = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    t[(i, j)] = if (i / per) == (j / per) { 0.2 } else { 0.94 };
                }
            }
        }
        t[(0, per)] *= factor;
        t[(per, 0)] *= factor;
        t
    }

    #[test]
    fn audit_reports_speedup_under_slowdown() {
        let topo = Topology::fully_connected(8);
        let times = slowed_times(8, 4, 50.0);
        let alpha = 0.1;
        let gen = PolicyGenerator::new(PolicySearchConfig::new(alpha));
        let res = gen.generate(&times, &topo).expect("feasible");
        let audit = audit_policy(&res, &times, &topo, alpha);

        assert!(
            audit.iteration_speedup() > 1.5,
            "policy should beat uniform clearly under a 50× slowdown: {:.2}×",
            audit.iteration_speedup()
        );
        assert!(audit.lambda2 < 1.0 && audit.lambda2 > 0.0);
        assert!((audit.spectral_gap - (1.0 - audit.lambda2)).abs() < 1e-12);
        // The slowed outlier link gets almost none of the selection mass
        // (it sits at its Eq. 11 floor).
        assert!(
            audit.slow_link_mass < 0.05,
            "slow-link mass {} should be suppressed to the floor",
            audit.slow_link_mass
        );
    }

    #[test]
    fn bottleneck_cut_splits_the_islands() {
        let topo = Topology::fully_connected(6);
        let mut times = Matrix::zeros(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    // Strong island structure: cross links 30× slower.
                    times[(i, j)] = if (i / 3) == (j / 3) { 0.1 } else { 3.0 };
                }
            }
        }
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        let res = gen.generate(&times, &topo).expect("feasible");
        let audit = audit_policy(&res, &times, &topo, 0.1);
        let (mut a, mut b) = audit.bottleneck;
        a.sort_unstable();
        b.sort_unstable();
        let ok = (a == vec![0, 1, 2] && b == vec![3, 4, 5])
            || (a == vec![3, 4, 5] && b == vec![0, 1, 2]);
        assert!(ok, "bottleneck cut should separate the servers: {a:?} | {b:?}");
    }

    #[test]
    fn self_selection_reported_per_node() {
        let topo = Topology::fully_connected(4);
        let times = slowed_times(4, 2, 1.0);
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        let res = gen.generate(&times, &topo).expect("feasible");
        let audit = audit_policy(&res, &times, &topo, 0.1);
        assert_eq!(audit.self_selection.len(), 4);
        for (i, &s) in audit.self_selection.iter().enumerate() {
            assert!((0.0..=1.0).contains(&s), "node {i} self prob {s}");
            assert!((s - res.policy[(i, i)]).abs() < 1e-12);
        }
    }
}
