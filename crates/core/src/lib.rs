//! # netmax-core
//!
//! The primary contribution of the paper, implemented in full:
//!
//! * [`gossip_matrix`] — construction of the expected gossip matrix
//!   `Y_P = E[(D^k)^T D^k]` from a communication policy (Eq. 19–22) and
//!   the convergence-bound arithmetic of Theorems 1–2.
//! * [`policy`] — the communication-policy generation of Algorithm 3: the
//!   nested (ρ, t̄) search, the LP of Eq. (14) solved with `netmax-lp`,
//!   and λ₂ evaluation with `netmax-linalg`.
//! * [`sparse_policy`] — the edge-set control plane for fleets beyond
//!   [`sparse_policy::DENSE_CONTROL_THRESHOLD`] nodes: per-row Eq. (14)
//!   LPs (bit-identical to the joint dense solve), sparse `Y_P`
//!   assembly, and the power-iteration λ₂ of `netmax-linalg`, so every
//!   monitor round costs O(edges), not O(n²)–O(n³).
//! * [`monitor`] — the Network Monitor of Algorithm 1: periodic iteration-
//!   time collection and policy dissemination.
//! * [`netmax`] — the consensus SGD worker algorithm of Algorithm 2: the
//!   two-step update, probabilistic neighbour selection, and EMA
//!   iteration-time tracking.
//! * [`engine`] — the discrete-event training engine that executes NetMax
//!   and the baselines over a simulated network, with full metric
//!   recording (loss/accuracy/consensus/time breakdowns).
//! * [`diagnostics`] — policy audits: predicted speedup over uniform
//!   selection, mixing rate, and the spectral bottleneck cut.
//!
//! The engine follows the paper's own execution model (§IV): worker nodes
//! iterate asynchronously, and at every *global step* exactly one worker
//! completes an iteration. The engine dispatches workers in completion-time
//! order on a virtual clock, so asynchrony, staleness, and heterogeneous
//! link speeds are all captured while runs remain fully deterministic.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod diagnostics;
pub mod engine;
pub mod gossip_matrix;
pub mod monitor;
pub mod netmax;
pub mod policy;
pub mod sparse_policy;

pub use diagnostics::{audit_policy, PolicyAudit};
pub use engine::{
    Algorithm, AlgorithmKind, Environment, ExecutionMode, Recorder, RunReport, Sample, Scenario,
    ScenarioBuilder, TrainConfig,
};
pub use gossip_matrix::{build_y, build_y_sparse, convergence_bound, node_probabilities,
    node_probabilities_sparse};
pub use monitor::{MonitorConfig, NetworkMonitor};
pub use netmax::{MergeWeighting, NetMax, NetMaxConfig, PolicyView};
pub use policy::{PolicyGenerator, PolicyResult, PolicySearchConfig};
pub use sparse_policy::{
    solve_policy_lp_rowwise, EdgeTimes, SparsePolicy, SparsePolicyResult,
    DENSE_CONTROL_THRESHOLD,
};
