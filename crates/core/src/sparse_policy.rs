//! Edge-set (sparse) policy generation — Algorithm 3 at fleet scale.
//!
//! The dense generator in [`crate::policy`] carries a variable per ordered
//! node pair and evaluates λ₂ with a dense Jacobi sweep: O(M²) LP
//! variables and O(M³) eigensolver work per candidate, fine at the paper's
//! M ≤ 16 but hopeless at M = 4096. This module is the scale path:
//!
//! * iteration times live in an [`EdgeTimes`] edge list, not an M×M
//!   matrix;
//! * the Eq. (14) LP is solved **row by row** — each row of `P` has its
//!   own variables and exactly two constraints, so the joint LP is block
//!   diagonal and [`solve_policy_lp_rowwise`] reproduces the dense
//!   solution *bit for bit* (the equivalence suite asserts exact
//!   equality; see the function docs for why Bland's rule makes the
//!   per-block pivot sequences identical);
//! * λ₂ comes from the deflated sparse power iteration of
//!   `netmax-linalg`, whose per-iteration cost is the edge count.
//!
//! The dense path stays the oracle below [`DENSE_CONTROL_THRESHOLD`]
//! nodes; nothing in the existing small-fleet world routes through this
//! module.

use crate::gossip_matrix::build_y_sparse;
use crate::policy::{PolicyGenerator, POLICY_MARGIN};
use netmax_linalg::{second_largest_eigenvalue_sparse, Matrix};
use netmax_lp::{solve, LpProblem, Relation};
use netmax_net::Topology;

/// Fleet sizes up to this many nodes use the dense control plane
/// (Jacobi λ₂, joint LP, dense `T` matrix) — it is faster there and it is
/// the reference the sparse machinery is pinned against. Strictly larger
/// fleets switch to the edge-set path.
pub const DENSE_CONTROL_THRESHOLD: usize = 64;

/// Iteration cap for the sparse λ₂ evaluation inside the candidate sweep.
/// Power iteration's convergence rate degrades as the spectral gap closes
/// (large diameters push λ₂ → 1), so at scale the sweep ranks candidates
/// by a bounded-effort estimate rather than a fully converged eigenvalue —
/// the ranking, not the tenth digit, is what the search consumes.
const SPARSE_L2_MAX_ITERS: usize = 5_000;

/// Convergence tolerance for the sparse λ₂ evaluation.
const SPARSE_L2_TOL: f64 = 1e-12;

/// Directed iteration times `t_{i,m}` stored per live topology edge.
///
/// Row `i` holds `(m, t_{i,m})` pairs in strictly ascending `m` order —
/// the same visit order a dense row scan produces, so reductions over a
/// row yield floats identical to the dense code's (absent entries
/// contribute exactly `+0.0`).
#[derive(Debug, Clone)]
pub struct EdgeTimes {
    n: usize,
    rows: Vec<Vec<(usize, f64)>>,
}

impl EdgeTimes {
    /// Builds from per-row `(neighbour, time)` lists.
    ///
    /// # Panics
    /// Panics unless every row is strictly ascending with in-range
    /// neighbour indices.
    pub fn from_rows(n: usize, rows: Vec<Vec<(usize, f64)>>) -> Self {
        assert_eq!(rows.len(), n, "row count mismatch");
        for (i, row) in rows.iter().enumerate() {
            let mut prev = None;
            for &(j, t) in row {
                assert!(j < n && j != i, "row {i}: bad neighbour {j}");
                assert!(prev.is_none_or(|p| p < j), "row {i} not strictly ascending");
                assert!(t.is_finite() && t >= 0.0, "row {i}: bad time {t}");
                prev = Some(j);
            }
        }
        Self { n, rows }
    }

    /// Extracts the topology's edge entries from a dense time matrix
    /// (equivalence tests and the dense→sparse conversion path).
    pub fn from_dense(times: &Matrix, topo: &Topology) -> Self {
        let n = topo.len();
        assert_eq!(times.rows(), n, "times shape mismatch");
        let rows = (0..n)
            .map(|i| topo.neighbors(i).iter().map(|&j| (j, times[(i, j)])).collect())
            .collect();
        Self { n, rows }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for a zero-node fleet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The time for `(i, m)`, or 0.0 when the pair holds no entry.
    pub fn get(&self, i: usize, m: usize) -> f64 {
        match self.rows[i].binary_search_by_key(&m, |&(j, _)| j) {
            Ok(k) => self.rows[i][k].1,
            Err(_) => 0.0,
        }
    }

    /// Row `i` as ascending `(neighbour, time)` pairs.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }
}

/// A row-stochastic communication policy stored over the edge set.
///
/// Each row holds ascending `(column, probability)` pairs and **always
/// contains its diagonal** (the self-selection probability), mirroring the
/// dense `P` whose diagonal is structural. Dense↔sparse conversions are
/// exact: entries are the same `f64`s, absent pairs are exactly zero.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsePolicy {
    n: usize,
    rows: Vec<Vec<(usize, f64)>>,
}

impl SparsePolicy {
    /// The identity policy: every node selects itself with probability 1.
    pub fn identity(n: usize) -> Self {
        Self { n, rows: (0..n).map(|i| vec![(i, 1.0)]).collect() }
    }

    /// Builds from per-row ascending `(column, probability)` lists.
    ///
    /// # Panics
    /// Panics unless each row is strictly ascending, in range, and
    /// contains its diagonal entry.
    pub fn from_rows(n: usize, rows: Vec<Vec<(usize, f64)>>) -> Self {
        assert_eq!(rows.len(), n, "row count mismatch");
        for (i, row) in rows.iter().enumerate() {
            let mut prev = None;
            let mut has_diag = false;
            for &(j, _) in row {
                assert!(j < n, "row {i}: column {j} out of range");
                assert!(prev.is_none_or(|p| p < j), "row {i} not strictly ascending");
                has_diag |= j == i;
                prev = Some(j);
            }
            assert!(has_diag, "row {i} is missing its diagonal entry");
        }
        Self { n, rows }
    }

    /// Converts a dense policy, keeping the topology-supported pattern:
    /// every non-zero off-diagonal plus every diagonal entry.
    pub fn from_dense(p: &Matrix) -> Self {
        let n = p.rows();
        assert_eq!(p.cols(), n, "policy must be square");
        let rows = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j == i || p[(i, j)] != 0.0)
                    .map(|j| (j, p[(i, j)]))
                    .collect()
            })
            .collect();
        Self { n, rows }
    }

    /// Expands to a dense matrix (tests and diagnostics).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, p) in row {
                m[(i, j)] = p;
            }
        }
        m
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for a zero-node fleet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `p_{i,m}`, or 0.0 outside the stored pattern.
    pub fn get(&self, i: usize, m: usize) -> f64 {
        match self.rows[i].binary_search_by_key(&m, |&(j, _)| j) {
            Ok(k) => self.rows[i][k].1,
            Err(_) => 0.0,
        }
    }

    /// Row `i` as ascending `(column, probability)` pairs, diagonal
    /// included — the exact order a dense row scan visits the support in.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }

    /// The self-selection probability `p_{i,i}`.
    pub fn self_p(&self, i: usize) -> f64 {
        self.get(i, i)
    }

    /// Sum of row `i`, accumulated in ascending-column order (identical to
    /// the dense row sum: absent columns contribute exactly `+0.0`).
    pub fn row_sum(&self, i: usize) -> f64 {
        self.rows[i].iter().map(|&(_, p)| p).sum()
    }

    /// Total stored entries across all rows.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

/// A feasible policy produced by the sparse search — the edge-set
/// counterpart of [`crate::policy::PolicyResult`].
#[derive(Debug, Clone)]
pub struct SparsePolicyResult {
    /// The communication policy over the edge set.
    pub policy: SparsePolicy,
    /// The disagreement weight ρ to run consensus SGD with.
    pub rho: f64,
    /// Second-largest eigenvalue estimate of `Y_P` for the chosen policy
    /// (bounded-effort power iteration; see [`SparsePolicyResult`]'s
    /// module docs).
    pub lambda2: f64,
    /// The target mean iteration time t̄ the LP was solved for.
    pub t_bar: f64,
    /// Estimated total convergence time `t̄ · ln ε / ln λ₂`.
    pub t_convergence: f64,
}

/// Solves the LP of Eq. (14) row by row over the edge set.
///
/// The joint LP of [`crate::policy::solve_policy_lp`] is block diagonal:
/// row `i`'s variables (its out-edges plus its diagonal) appear in
/// exactly row `i`'s two constraints and nowhere else. Under the
/// two-phase Bland's-rule simplex this makes the per-row solves **bit
/// identical** to the joint solve:
///
/// * reduced costs never couple across blocks, so a block's eligible
///   entering set is independent of other blocks' pivots;
/// * Bland's rule picks the smallest eligible index, which within a block
///   is the block's own smallest — the same choice the per-row solve
///   makes, because the relative variable order (edges ascending, then
///   the diagonal last, then slacks/artificials) is preserved;
/// * ratio-test ties break on basis-variable index, and only same-block
///   rows can tie (other blocks have zero pivot-column entries);
/// * the phase-2 artificial price is `1 + max|c|·10⁶` with `max|c| = 1`
///   in both formulations.
///
/// The equivalence suite asserts exact `==` between the two solvers on
/// every registry topology, including mid-churn masked subgraphs.
pub fn solve_policy_lp_rowwise(
    alpha: f64,
    rho: f64,
    t_bar: f64,
    times: &EdgeTimes,
    topo: &Topology,
) -> Option<SparsePolicy> {
    let m = topo.len();
    assert_eq!(times.len(), m, "times/topology node count mismatch");

    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
    for i in 0..m {
        let nbrs = topo.neighbors(i);
        let deg = nbrs.len();
        // Variables: out-edges ascending (0..deg), diagonal last — the
        // same relative order as the joint LP's (edge block, then diag).
        let diag = deg;
        let mut lp = LpProblem::new(deg + 1);
        lp.set_objective(diag, 1.0);
        let mut sum_row = vec![(diag, 1.0)];
        let mut time_row = Vec::with_capacity(deg);
        for (v, &j) in nbrs.iter().enumerate() {
            sum_row.push((v, 1.0));
            time_row.push((v, times.get(i, j)));
            // Eq. (11): p_{i,m} > αρ (d_{i,m} + d_{m,i}).
            lp.set_lower_bound(v, alpha * rho * (topo.d(i, j) + topo.d(j, i)) + POLICY_MARGIN);
        }
        // Eq. (13): Σₘ p_{i,m} = 1.
        lp.add_constraint(sum_row, Relation::Eq, 1.0);
        // Eq. (10): Σₘ t_{i,m} p_{i,m} d_{i,m} = M t̄.
        lp.add_constraint(time_row, Relation::Eq, m as f64 * t_bar);

        let sol = solve(&lp).optimal()?;
        // Assemble the merged ascending row (diagonal in sorted position)
        // and normalise in the dense column order so round-off cleanup
        // divides by the identical sum.
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(deg + 1);
        for (v, &j) in nbrs.iter().enumerate() {
            row.push((j, sol.x[v].max(0.0)));
        }
        let at = row.partition_point(|&(j, _)| j < i);
        row.insert(at, (i, sol.x[diag].max(0.0)));
        let s: f64 = row.iter().map(|&(_, p)| p).sum();
        debug_assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        for e in &mut row {
            e.1 /= s;
        }
        rows.push(row);
    }
    Some(SparsePolicy { n: m, rows })
}

/// ρ sweep upper bound over the edge set — float-identical to
/// [`crate::policy::rho_upper_bound`] (absent pairs contribute exactly
/// `+0.0` to the row reductions).
pub fn rho_upper_bound_sparse(alpha: f64, times: &EdgeTimes, topo: &Topology) -> Option<f64> {
    let m = topo.len();
    let mf = m as f64;
    let u_time = (0..m)
        .map(|i| {
            (1.0 / mf)
                * times
                    .row(i)
                    .iter()
                    .map(|&(j, t)| t * topo.d(i, j))
                    .fold(0.0f64, f64::max)
        })
        .fold(f64::INFINITY, f64::min);
    let l_coef = (0..m)
        .map(|i| {
            (alpha / mf)
                * times
                    .row(i)
                    .iter()
                    .map(|&(j, t)| t * (topo.d(i, j) + topo.d(j, i)))
                    .sum::<f64>()
        })
        .fold(0.0f64, f64::max);
    let max_deg = (0..m).map(|i| topo.degree(i)).max().unwrap_or(1) as f64;
    let mut u_rho = 0.5 / alpha;
    if l_coef > 0.0 {
        u_rho = u_rho.min(0.95 * u_time / l_coef);
    }
    u_rho = u_rho.min(0.95 / (2.0 * alpha * max_deg));
    if u_rho > 0.0 && u_rho.is_finite() {
        Some(u_rho)
    } else {
        None
    }
}

/// t̄ sweep interval over the edge set — float-identical to
/// [`crate::policy::t_bar_bounds`].
pub fn t_bar_bounds_sparse(
    alpha: f64,
    rho: f64,
    times: &EdgeTimes,
    topo: &Topology,
) -> Option<(f64, f64)> {
    let m = topo.len();
    let mf = m as f64;
    let lower = (0..m)
        .map(|i| {
            (alpha * rho / mf)
                * times
                    .row(i)
                    .iter()
                    .map(|&(j, t)| t * (topo.d(i, j) + topo.d(j, i)))
                    .sum::<f64>()
        })
        .fold(f64::NEG_INFINITY, f64::max);
    let upper = (0..m)
        .map(|i| {
            (1.0 / mf)
                * times
                    .row(i)
                    .iter()
                    .map(|&(j, t)| t * topo.d(i, j))
                    .fold(0.0f64, f64::max)
        })
        .fold(f64::INFINITY, f64::min);
    if lower.is_finite() && upper.is_finite() && upper > lower {
        Some((lower, upper))
    } else {
        None
    }
}

impl PolicyGenerator {
    /// Runs Algorithm 3 over the edge set: the same K×R (ρ, t̄) candidate
    /// grid as [`PolicyGenerator::generate`] (the grid endpoints are
    /// float-identical), each candidate solved row-wise and scored with
    /// the sparse λ₂ estimate.
    ///
    /// Candidate *selection* can differ from the dense path when two
    /// candidates' convergence estimates sit within the eigensolvers'
    /// disagreement (≲ 10⁻⁶); both picks are then equally good. The LP
    /// solutions themselves are bit-identical per candidate.
    ///
    /// # Panics
    /// Panics if `times` does not match the topology's node count.
    pub fn generate_sparse(
        &self,
        times: &EdgeTimes,
        topo: &Topology,
    ) -> Option<SparsePolicyResult> {
        let m = topo.len();
        assert_eq!(times.len(), m, "iteration-time edge list shape mismatch");
        assert!(topo.is_connected(), "Assumption 1 requires a connected graph");

        let alpha = self.cfg.alpha;
        let u_rho = rho_upper_bound_sparse(alpha, times, topo)?;
        let delta_rho = u_rho / self.cfg.outer_k as f64;

        let mut best: Option<SparsePolicyResult> = None;
        for k in 1..=self.cfg.outer_k {
            let rho = k as f64 * delta_rho;
            if let Some(cand) = self.inner_loop_sparse(alpha, rho, times, topo) {
                if best.as_ref().is_none_or(|b| cand.t_convergence < b.t_convergence) {
                    best = Some(cand);
                }
            }
        }
        best
    }

    fn inner_loop_sparse(
        &self,
        alpha: f64,
        rho: f64,
        times: &EdgeTimes,
        topo: &Topology,
    ) -> Option<SparsePolicyResult> {
        let m = topo.len();
        let mf = m as f64;
        let (lower, upper) = t_bar_bounds_sparse(alpha, rho, times, topo)?;
        let delta = (upper - lower) / self.cfg.inner_r as f64;
        let mut best: Option<SparsePolicyResult> = None;
        for r in 1..=self.cfg.inner_r {
            let t_bar = lower + r as f64 * delta;
            let Some(policy) = solve_policy_lp_rowwise(alpha, rho, t_bar, times, topo) else {
                continue;
            };
            let p_node = vec![1.0 / mf; m];
            let y = build_y_sparse(&policy, topo, &p_node, alpha, rho);
            debug_assert!(
                (0..m).all(|i| {
                    (y.row(i).iter().map(|&(_, v)| v).sum::<f64>() - 1.0).abs() < 1e-6
                }),
                "feasible policy must give doubly stochastic Y (Lemma 1)"
            );
            let lambda2 =
                second_largest_eigenvalue_sparse(&y, SPARSE_L2_MAX_ITERS, SPARSE_L2_TOL)
                    .eigenvalue;
            if lambda2 >= 1.0 - 1e-12 || lambda2 <= 0.0 {
                continue;
            }
            let t_conv = t_bar * self.cfg.epsilon.ln() / lambda2.ln();
            if best.as_ref().is_none_or(|b| t_conv < b.t_convergence) {
                best = Some(SparsePolicyResult {
                    policy,
                    rho,
                    lambda2,
                    t_bar,
                    t_convergence: t_conv,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{solve_policy_lp, PolicySearchConfig};

    fn hetero_times_dense(m: usize, fast: f64, slow: f64) -> Matrix {
        let mut t = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    t[(i, j)] = if (i, j) == (0, 1) || (i, j) == (1, 0) { fast } else { slow };
                }
            }
        }
        t
    }

    #[test]
    fn rowwise_lp_matches_dense_exactly() {
        let topo = Topology::fully_connected(5);
        let dense_times = hetero_times_dense(5, 0.2, 1.5);
        let times = EdgeTimes::from_dense(&dense_times, &topo);
        let (alpha, rho, t_bar) = (0.05, 1.0, 0.22);
        let dense = solve_policy_lp(alpha, rho, t_bar, &dense_times, &topo)
            .expect("dense feasible");
        let sparse = solve_policy_lp_rowwise(alpha, rho, t_bar, &times, &topo)
            .expect("rowwise feasible");
        assert_eq!(sparse.to_dense().as_slice(), dense.as_slice(), "bit-exact equivalence");
    }

    #[test]
    fn sweep_bounds_match_dense_exactly() {
        let topo = Topology::ring(8);
        let mut dense_times = Matrix::zeros(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                if topo.is_edge(i, j) {
                    dense_times[(i, j)] = 0.3 + 0.1 * (i as f64) + 0.05 * (j as f64);
                }
            }
        }
        let times = EdgeTimes::from_dense(&dense_times, &topo);
        let alpha = 0.05;
        let d = crate::policy::rho_upper_bound(alpha, &dense_times, &topo).unwrap();
        let s = rho_upper_bound_sparse(alpha, &times, &topo).unwrap();
        assert_eq!(d, s);
        let (dl, du) = crate::policy::t_bar_bounds(alpha, d * 0.5, &dense_times, &topo).unwrap();
        let (sl, su) = t_bar_bounds_sparse(alpha, s * 0.5, &times, &topo).unwrap();
        assert_eq!(dl, sl);
        assert_eq!(du, su);
    }

    #[test]
    fn generate_sparse_produces_feasible_policy() {
        let topo = Topology::fully_connected(4);
        let dense_times = hetero_times_dense(4, 0.1, 1.0);
        let times = EdgeTimes::from_dense(&dense_times, &topo);
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        let res = gen.generate_sparse(&times, &topo).expect("feasible");
        for i in 0..4 {
            assert!((res.policy.row_sum(i) - 1.0).abs() < 1e-9, "row {i} not stochastic");
        }
        assert!(res.lambda2 > 0.0 && res.lambda2 < 1.0);
        assert!(res.t_convergence > 0.0 && res.rho > 0.0);
    }

    #[test]
    fn generate_sparse_close_to_dense_generate() {
        // The two paths share the candidate grid and the LP bit for bit;
        // only λ₂ evaluation differs (Jacobi vs power iteration), so the
        // chosen candidates' convergence estimates must be near-equal even
        // if a near-tie flips which candidate wins.
        let topo = Topology::fully_connected(6);
        let mut dense_times = Matrix::zeros(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    dense_times[(i, j)] = if (i / 3) == (j / 3) { 0.1 } else { 1.0 };
                }
            }
        }
        let times = EdgeTimes::from_dense(&dense_times, &topo);
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        let dense = gen.generate(&dense_times, &topo).expect("dense feasible");
        let sparse = gen.generate_sparse(&times, &topo).expect("sparse feasible");
        let rel = (dense.t_convergence - sparse.t_convergence).abs() / dense.t_convergence;
        assert!(rel < 1e-2, "t_conv diverged: dense {} sparse {}", dense.t_convergence,
            sparse.t_convergence);
    }

    #[test]
    fn sparse_policy_round_trips_through_dense() {
        let topo = Topology::ring(6);
        let dense_times = {
            let mut t = Matrix::zeros(6, 6);
            for i in 0..6 {
                for j in 0..6 {
                    if topo.is_edge(i, j) {
                        t[(i, j)] = 1.0;
                    }
                }
            }
            t
        };
        let times = EdgeTimes::from_dense(&dense_times, &topo);
        // t̄ must land inside (L, U) = (αρ·2·2/6, 1/6) for this ring.
        let p = solve_policy_lp_rowwise(0.05, 1.0, 0.12, &times, &topo).expect("feasible");
        let back = SparsePolicy::from_dense(&p.to_dense());
        assert_eq!(p, back);
        // Non-edges carry no mass.
        assert_eq!(p.get(0, 2), 0.0);
        assert_eq!(p.get(0, 3), 0.0);
        assert!(p.self_p(0) >= 0.0);
    }

    #[test]
    fn identity_policy_shape() {
        let p = SparsePolicy::identity(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.get(1, 1), 1.0);
        assert_eq!(p.get(1, 2), 0.0);
        assert_eq!(p.row_sum(2), 1.0);
    }

    #[test]
    fn scale_smoke_generate_on_large_ring() {
        // A coarse search on a 128-ring completes quickly and yields a
        // stochastic policy — the edge-set path never touches an n² object.
        let n = 128;
        let topo = Topology::ring(n);
        let rows: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                topo.neighbors(i)
                    .iter()
                    .map(|&j| (j, 0.5 + 0.01 * ((i + j) % 7) as f64))
                    .collect()
            })
            .collect();
        let times = EdgeTimes::from_rows(n, rows);
        let gen = PolicyGenerator::new(PolicySearchConfig {
            alpha: 0.05,
            outer_k: 3,
            inner_r: 3,
            epsilon: 0.01,
        });
        let res = gen.generate_sparse(&times, &topo).expect("feasible at scale");
        for i in 0..n {
            assert!((res.policy.row_sum(i) - 1.0).abs() < 1e-9);
            assert!(res.policy.row(i).len() <= 3, "ring rows have ≤ 2 edges + diag");
        }
    }
}
