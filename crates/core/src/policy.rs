//! Communication policy generation — Algorithm 3 of the paper.
//!
//! Given the iteration-time matrix `T = [t_{i,m}]` collected by the
//! Network Monitor, the generator searches for the policy `P` (and
//! disagreement weight ρ) minimising the estimated total convergence time
//! `k·t̄ = t̄ · ln ε / ln λ₂` subject to the feasibility constraints of
//! Eq. (9)–(13):
//!
//! * an **outer loop** sweeps K values of ρ over its feasible interval
//!   `[0, 0.5/α]` (Appendix A);
//! * an **inner loop** sweeps R values of the target mean iteration time
//!   t̄ over `[L, U]` with
//!   `L = maxᵢ (αρ/M) Σₘ t_{i,m}(d_{i,m}+d_{m,i})` and
//!   `U = minᵢ (1/M) maxₘ t_{i,m} d_{i,m}` (Eq. 26/28);
//! * for each (ρ, t̄) the LP of Eq. (14) is solved with `netmax-lp`, the
//!   resulting `Y_P`'s λ₂ is computed with `netmax-linalg`, and the
//!   candidate with minimal `T_convergence` wins.

use crate::gossip_matrix::build_y;
use netmax_linalg::{second_largest_eigenvalue, Matrix};
use netmax_lp::{solve_with, LpProblem, LpWorkspace, Relation};
use netmax_net::Topology;
use serde::{Deserialize, Serialize};

/// Slack added to the strict inequality of Eq. (11) so LP solutions stay
/// strictly feasible (`p_{i,m} ≥ αρ(d+d) + margin`).
pub const POLICY_MARGIN: f64 = 1e-6;

/// Search configuration for Algorithm 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicySearchConfig {
    /// Learning rate α currently in use by the workers.
    pub alpha: f64,
    /// Outer-loop resolution K (number of ρ values tried).
    pub outer_k: usize,
    /// Inner-loop resolution R (number of t̄ values tried per ρ).
    pub inner_r: usize,
    /// Convergence target ε of Eq. (9). Any value in (0, 1) yields the
    /// same argmin (it scales every candidate's objective equally); kept
    /// configurable for the sensitivity tests.
    pub epsilon: f64,
}

impl PolicySearchConfig {
    /// Defaults used throughout the evaluation: K = 10, R = 10, ε = 0.01.
    pub fn new(alpha: f64) -> Self {
        Self { alpha, outer_k: 10, inner_r: 10, epsilon: 0.01 }
    }
}

/// A feasible policy produced by the search.
#[derive(Debug, Clone)]
pub struct PolicyResult {
    /// The communication policy matrix `P` (row-stochastic, diagonal =
    /// self-selection probability).
    pub policy: Matrix,
    /// The disagreement weight ρ to run consensus SGD with.
    pub rho: f64,
    /// Second-largest eigenvalue of `Y_P` for the chosen policy.
    pub lambda2: f64,
    /// The target mean iteration time t̄ the LP was solved for.
    pub t_bar: f64,
    /// Estimated total convergence time `t̄ · ln ε / ln λ₂`.
    pub t_convergence: f64,
}

/// The Algorithm 3 policy generator.
#[derive(Debug, Clone)]
pub struct PolicyGenerator {
    pub(crate) cfg: PolicySearchConfig,
}

/// Upper bound of the feasible ρ interval swept by the outer loop.
///
/// Appendix A bounds ρ by 0.5/α. Two further caps keep every outer
/// candidate *feasible* (the paper sweeps [0, 0.5/α] blindly, which under
/// a severely slowed link makes L(ρ) ≥ U for every candidate and stalls
/// the policy exactly when adaptation matters most):
///
/// 1. Eq. 26 vs Eq. 28 — L(ρ) = ρ · maxᵢ (α/M) Σₘ t_{i,m}(d+d) must
///    stay below U, giving ρ < U / maxᵢ (α/M) Σₘ t_{i,m}(d+d).
/// 2. Eq. 11 row mass — Σₘ αρ(d+d) ≤ 1 needs ρ ≤ 1/(2α·deg).
///
/// Returns `None` when the interval is empty or ill-defined.
pub fn rho_upper_bound(alpha: f64, times: &Matrix, topo: &Topology) -> Option<f64> {
    let m = topo.len();
    let mf = m as f64;
    let u_time = (0..m)
        .map(|i| {
            (1.0 / mf)
                * (0..m)
                    .map(|j| times[(i, j)] * topo.d(i, j))
                    .fold(0.0f64, f64::max)
        })
        .fold(f64::INFINITY, f64::min);
    let l_coef = (0..m)
        .map(|i| {
            (alpha / mf)
                * (0..m)
                    .map(|j| times[(i, j)] * (topo.d(i, j) + topo.d(j, i)))
                    .sum::<f64>()
        })
        .fold(0.0f64, f64::max);
    let max_deg = (0..m).map(|i| topo.degree(i)).max().unwrap_or(1) as f64;
    let mut u_rho = 0.5 / alpha;
    if l_coef > 0.0 {
        u_rho = u_rho.min(0.95 * u_time / l_coef);
    }
    u_rho = u_rho.min(0.95 / (2.0 * alpha * max_deg));
    if u_rho > 0.0 && u_rho.is_finite() {
        Some(u_rho)
    } else {
        None
    }
}

/// The `[L, U]` interval the inner loop sweeps t̄ over for a fixed ρ:
/// `L = maxᵢ (αρ/M) Σₘ t_{i,m}(d_{i,m}+d_{m,i})` (Eq. 26) and
/// `U = minᵢ (1/M) maxₘ t_{i,m} d_{i,m}` (Eq. 28). `None` when empty.
pub fn t_bar_bounds(alpha: f64, rho: f64, times: &Matrix, topo: &Topology) -> Option<(f64, f64)> {
    let m = topo.len();
    let mf = m as f64;
    let lower = (0..m)
        .map(|i| {
            (alpha * rho / mf)
                * (0..m)
                    .map(|j| times[(i, j)] * (topo.d(i, j) + topo.d(j, i)))
                    .sum::<f64>()
        })
        .fold(f64::NEG_INFINITY, f64::max);
    let upper = (0..m)
        .map(|i| {
            (1.0 / mf)
                * (0..m)
                    .map(|j| times[(i, j)] * topo.d(i, j))
                    .fold(0.0f64, f64::max)
        })
        .fold(f64::INFINITY, f64::min);
    if lower.is_finite() && upper.is_finite() && upper > lower {
        Some((lower, upper))
    } else {
        None
    }
}

impl PolicyGenerator {
    /// Creates a generator with the given search configuration.
    pub fn new(cfg: PolicySearchConfig) -> Self {
        assert!(cfg.alpha > 0.0, "α must be positive");
        assert!(cfg.outer_k > 0 && cfg.inner_r > 0, "search resolutions must be positive");
        assert!((0.0..1.0).contains(&cfg.epsilon) && cfg.epsilon > 0.0, "ε must lie in (0,1)");
        Self { cfg }
    }

    /// Runs `GENERATEPOLICYMATRIX(α, K, R, T)` (Algorithm 3 lines 1–12).
    ///
    /// Returns `None` when no (ρ, t̄) pair admits a feasible LP — the
    /// caller (Network Monitor) then keeps the previous policy.
    ///
    /// # Panics
    /// Panics if `times` is not `M × M` for the topology's `M`.
    pub fn generate(&self, times: &Matrix, topo: &Topology) -> Option<PolicyResult> {
        let m = topo.len();
        assert_eq!(times.rows(), m, "iteration-time matrix shape mismatch");
        assert_eq!(times.cols(), m, "iteration-time matrix shape mismatch");
        assert!(topo.is_connected(), "Assumption 1 requires a connected graph");

        let alpha = self.cfg.alpha;
        let u_rho = rho_upper_bound(alpha, times, topo)?;
        let delta_rho = u_rho / self.cfg.outer_k as f64;

        // The K·R candidate LPs share every coefficient row — only the
        // Eq. 11 lower bounds (per ρ) and the Eq. 10 rhs (per t̄) move —
        // so the template and solver workspace are built once and
        // re-stamped per candidate. Solutions are bit-identical to
        // per-candidate construction.
        let mut template = PolicyLpTemplate::build(times, topo);
        let mut ws = LpWorkspace::new();

        let mut best: Option<PolicyResult> = None;
        for k in 1..=self.cfg.outer_k {
            let rho = k as f64 * delta_rho;
            if let Some(cand) = self.inner_loop(alpha, rho, times, topo, &mut template, &mut ws)
            {
                if best.as_ref().is_none_or(|b| cand.t_convergence < b.t_convergence) {
                    best = Some(cand);
                }
            }
        }
        best
    }

    /// Algorithm 3 lines 13–25: sweep t̄ over `[L, U]` for a fixed ρ.
    fn inner_loop(
        &self,
        alpha: f64,
        rho: f64,
        times: &Matrix,
        topo: &Topology,
        template: &mut PolicyLpTemplate,
        ws: &mut LpWorkspace,
    ) -> Option<PolicyResult> {
        let m = topo.len();
        let mf = m as f64;
        let (lower, upper) = t_bar_bounds(alpha, rho, times, topo)?;
        let delta = (upper - lower) / self.cfg.inner_r as f64;
        let mut best: Option<PolicyResult> = None;
        for r in 1..=self.cfg.inner_r {
            let t_bar = lower + r as f64 * delta;
            template.stamp(alpha, rho, t_bar, times, topo);
            let Some(policy) = template.solve(topo, ws) else {
                continue;
            };
            let p_node = vec![1.0 / mf; m];
            let y = build_y(&policy, topo, &p_node, alpha, rho);
            debug_assert!(
                netmax_linalg::is_doubly_stochastic(&y, 1e-6),
                "feasible policy must give doubly stochastic Y (Lemma 1)"
            );
            let lambda2 = second_largest_eigenvalue(&y);
            if lambda2 >= 1.0 - 1e-12 || lambda2 <= 0.0 {
                continue;
            }
            // T_convergence = t̄ · ln ε / ln λ₂  (both logs negative).
            let t_conv = t_bar * self.cfg.epsilon.ln() / lambda2.ln();
            if best.as_ref().is_none_or(|b| t_conv < b.t_convergence) {
                best = Some(PolicyResult { policy, rho, lambda2, t_bar, t_convergence: t_conv });
            }
        }
        best
    }
}

/// The reusable shape of the Eq. (14) LP for one `(times, topology)`
/// pair, decomposed into its independent per-node blocks.
///
/// The joint LP is block diagonal — row `i`'s variables (its out-edges
/// plus its diagonal) appear in exactly row `i`'s two constraints and
/// nowhere else — and under the two-phase Bland's-rule simplex the
/// per-block solves are **bit identical** to the joint solve (the full
/// argument lives on
/// [`solve_policy_lp_rowwise`](crate::sparse_policy::solve_policy_lp_rowwise),
/// whose test suite asserts exact `==` against the joint formulation).
/// Solving M tiny 2-row tableaus instead of one `2M`-row tableau cuts
/// every pivot from `O(M · M·deg)` to `O(deg)` work.
///
/// Every coefficient row is fixed across the policy search's `(ρ, t̄)`
/// grid, so the blocks are built once and only the Eq. 11 lower bounds
/// and Eq. 10 right-hand sides are re-stamped per candidate — stamping
/// writes exactly the values per-candidate construction would.
struct PolicyLpTemplate {
    /// Block `i`: variables are node `i`'s out-edges in ascending
    /// neighbour order, then its diagonal (self-selection) variable.
    blocks: Vec<LpProblem>,
}

impl PolicyLpTemplate {
    /// Builds the per-node constraint structure: in each block, row 0 is
    /// the Eq. 13 stochasticity row and row 1 the Eq. 10 time row.
    fn build(times: &Matrix, topo: &Topology) -> Self {
        let m = topo.len();
        let mut blocks = Vec::with_capacity(m);
        for i in 0..m {
            let nbrs = topo.neighbors(i);
            let deg = nbrs.len();
            let diag = deg;
            let mut lp = LpProblem::new(deg + 1);
            // Objective: minimize p_{i,i} (the joint objective Σᵢ p_{i,i}
            // separates into these per-block terms).
            lp.set_objective(diag, 1.0);
            let mut sum_row = vec![(diag, 1.0)];
            let mut time_row = Vec::with_capacity(deg);
            for (v, &j) in nbrs.iter().enumerate() {
                sum_row.push((v, 1.0));
                time_row.push((v, times[(i, j)]));
            }
            // Eq. (13): Σₘ p_{i,m} = 1.
            lp.add_constraint(sum_row, Relation::Eq, 1.0);
            // Eq. (10): Σₘ t_{i,m} p_{i,m} d_{i,m} = M t̄ (rhs stamped).
            lp.add_constraint(time_row, Relation::Eq, 0.0);
            blocks.push(lp);
        }
        Self { blocks }
    }

    /// Stamps one `(α, ρ, t̄)` candidate's lower bounds and right-hand
    /// sides into every block.
    fn stamp(&mut self, alpha: f64, rho: f64, t_bar: f64, _times: &Matrix, topo: &Topology) {
        let m = topo.len();
        for (i, lp) in self.blocks.iter_mut().enumerate() {
            for (v, &j) in topo.neighbors(i).iter().enumerate() {
                // Eq. (11): p_{i,m} > αρ (d_{i,m} + d_{m,i}).
                lp.set_lower_bound(
                    v,
                    alpha * rho * (topo.d(i, j) + topo.d(j, i)) + POLICY_MARGIN,
                );
            }
            lp.set_constraint_rhs(1, m as f64 * t_bar);
        }
    }

    /// Solves the stamped candidate and extracts the policy matrix.
    /// Returns `None` on the first infeasible block — exactly when the
    /// joint LP is infeasible.
    fn solve(&self, topo: &Topology, ws: &mut LpWorkspace) -> Option<Matrix> {
        let m = topo.len();
        let mut p = Matrix::zeros(m, m);
        for i in 0..m {
            let sol = solve_with(&self.blocks[i], ws).optimal()?;
            let nbrs = topo.neighbors(i);
            p[(i, i)] = sol.x[nbrs.len()].max(0.0);
            for (v, &j) in nbrs.iter().enumerate() {
                p[(i, j)] = sol.x[v].max(0.0);
            }
            // Normalise away solver round-off so rows are exactly
            // stochastic (the dense row sum walks ascending columns;
            // absent edges contribute exactly +0.0).
            let s = p.row_sum(i);
            debug_assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
            for j in 0..m {
                p[(i, j)] /= s;
            }
        }
        Some(p)
    }
}

/// Solves the LP of Eq. (14) for a fixed `(α, ρ, t̄)`.
///
/// Variables are the policy entries `p_{i,m}` for every directed edge of
/// the topology plus the self-selection probabilities `p_{i,i}`. Returns
/// the policy matrix if feasible.
pub fn solve_policy_lp(
    alpha: f64,
    rho: f64,
    t_bar: f64,
    times: &Matrix,
    topo: &Topology,
) -> Option<Matrix> {
    let mut template = PolicyLpTemplate::build(times, topo);
    template.stamp(alpha, rho, t_bar, times, topo);
    template.solve(topo, &mut LpWorkspace::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Iteration-time matrix for a fully-connected cluster where the link
    /// between nodes 0 and 1 is fast and everything else is slow.
    fn hetero_times(m: usize, fast: f64, slow: f64) -> Matrix {
        let mut t = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    t[(i, j)] = if (i, j) == (0, 1) || (i, j) == (1, 0) { fast } else { slow };
                }
            }
        }
        t
    }

    fn uniform_times(m: usize, v: f64) -> Matrix {
        hetero_times(m, v, v)
    }

    #[test]
    fn generates_feasible_policy_on_uniform_network() {
        let topo = Topology::fully_connected(4);
        let times = uniform_times(4, 1.0);
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        let res = gen.generate(&times, &topo).expect("uniform network must be feasible");
        // Policy rows are stochastic.
        for i in 0..4 {
            assert!((res.policy.row_sum(i) - 1.0).abs() < 1e-9);
        }
        assert!(res.lambda2 < 1.0 && res.lambda2 > 0.0);
        assert!(res.t_convergence > 0.0);
        assert!(res.rho > 0.0);
        // By symmetry every off-diagonal should be (nearly) equal across rows.
        let p01 = res.policy[(0, 1)];
        let p23 = res.policy[(2, 3)];
        assert!((p01 - p23).abs() < 0.2, "uniform network should give near-uniform policy");
    }

    #[test]
    fn policy_prefers_fast_links() {
        // Two servers with three workers each: intra-server links fast,
        // cross-server links 10× slower. (With fewer than ~3 workers per
        // server, cross-island mixing dominates the λ₂ trade-off and the
        // optimal policy is legitimately near-uniform; at 3 per server
        // the fast-link preference is unambiguous.)
        let m = 6;
        let topo = Topology::fully_connected(m);
        let mut times = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    times[(i, j)] = if (i / 3) == (j / 3) { 0.1 } else { 1.0 };
                }
            }
        }
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        let res = gen.generate(&times, &topo).expect("feasible");
        // Simplex optima are vertices, so individual fast links may sit at
        // different levels — the preference is asserted in aggregate: each
        // node's *average* fast-link probability must exceed its average
        // slow-link probability.
        for i in 0..m {
            let (mut fast_sum, mut slow_sum) = (0.0, 0.0);
            for j in 0..m {
                if i == j {
                    continue;
                }
                if (i / 3) == (j / 3) {
                    fast_sum += res.policy[(i, j)];
                } else {
                    slow_sum += res.policy[(i, j)];
                }
            }
            assert!(
                fast_sum / 2.0 > slow_sum / 3.0,
                "node {i}: fast links not preferred: {:?}",
                res.policy
            );
        }
    }

    #[test]
    fn feasible_policy_satisfies_eq10_rows() {
        // Every row's expected comm time equals M·t̄.
        let topo = Topology::fully_connected(5);
        let times = hetero_times(5, 0.2, 1.5);
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.05));
        let res = gen.generate(&times, &topo).expect("feasible");
        let m = 5;
        let expected = m as f64 * res.t_bar;
        for i in 0..m {
            let row_time: f64 = (0..m)
                .filter(|&j| j != i)
                .map(|j| times[(i, j)] * res.policy[(i, j)])
                .sum();
            assert!(
                (row_time - expected).abs() < 1e-5,
                "row {i}: {row_time} vs {expected}"
            );
        }
    }

    #[test]
    fn respects_minimum_probabilities() {
        let topo = Topology::fully_connected(4);
        let times = hetero_times(4, 0.1, 2.0);
        let cfg = PolicySearchConfig::new(0.1);
        let gen = PolicyGenerator::new(cfg.clone());
        let res = gen.generate(&times, &topo).expect("feasible");
        let min_p = cfg.alpha * res.rho * 2.0;
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(
                        res.policy[(i, j)] >= min_p - 1e-9,
                        "p[{i},{j}] = {} below αρ(d+d) = {min_p}",
                        res.policy[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn ring_topology_supported() {
        let topo = Topology::ring(6);
        let mut times = Matrix::zeros(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                if topo.is_edge(i, j) {
                    times[(i, j)] = if i.min(j) == 0 { 0.3 } else { 1.0 };
                }
            }
        }
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        let res = gen.generate(&times, &topo).expect("ring feasible");
        // Non-edges must stay exactly zero.
        assert_eq!(res.policy[(0, 2)], 0.0);
        assert_eq!(res.policy[(0, 3)], 0.0);
        assert!(res.policy[(0, 1)] > 0.0);
    }

    #[test]
    fn infeasible_when_graph_star_times_extreme() {
        // With a single node having an enormous minimum time, U < L for
        // large ρ but small ρ still admits a solution — the generator
        // should *still* find something. True infeasibility needs U ≤ L
        // for every ρ, which happens when one node's only link dominates:
        // here we check the generator degrades gracefully rather than
        // panicking (it may return a valid policy or None).
        let topo = Topology::fully_connected(3);
        let mut times = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    times[(i, j)] = 1.0;
                }
            }
        }
        times[(2, 0)] = 1e9;
        times[(2, 1)] = 1e9;
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        let _ = gen.generate(&times, &topo); // must not panic
    }

    #[test]
    fn deterministic() {
        let topo = Topology::fully_connected(4);
        let times = hetero_times(4, 0.1, 1.0);
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        let a = gen.generate(&times, &topo).unwrap();
        let b = gen.generate(&times, &topo).unwrap();
        assert_eq!(a.policy.as_slice(), b.policy.as_slice());
        assert_eq!(a.rho, b.rho);
    }

    #[test]
    fn faster_network_means_smaller_t_convergence() {
        let topo = Topology::fully_connected(4);
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        let fast = gen.generate(&uniform_times(4, 0.1), &topo).unwrap();
        let slow = gen.generate(&uniform_times(4, 1.0), &topo).unwrap();
        assert!(fast.t_convergence < slow.t_convergence);
    }
}
