//! The Network Monitor — Algorithm 1.
//!
//! The monitor is the only centralised component of NetMax, and it is
//! deliberately *not* a parameter server: "it only collects a small amount
//! of time-related statistics for evaluating the network condition"
//! (§III-A). Every period `Ts` it gathers the workers' EMA iteration-time
//! vectors into the matrix `[t_{i,m}]`, runs the policy generator
//! (Algorithm 3), and disseminates the resulting `(P, ρ)`.
//!
//! [`EmaTimeTracker`] implements the worker-side `UPDATETIMEVECTOR`
//! procedure (Algorithm 2 lines 19–22): an exponential moving average per
//! (node, neighbour) pair whose smoothing factor β trades recency against
//! stability.

use crate::engine::session::{matrix_from_json, matrix_to_json};
use crate::policy::{PolicyGenerator, PolicyResult, PolicySearchConfig};
use crate::sparse_policy::{EdgeTimes, SparsePolicy, SparsePolicyResult, DENSE_CONTROL_THRESHOLD};
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_linalg::Matrix;
use netmax_net::Topology;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Backing storage for the EMA estimates: a dense `n × n` matrix for
/// small fleets (byte-for-byte the historical layout), or a map keyed by
/// ordered pair for fleets whose `n²` would dwarf the edge count — EMA
/// entries only ever exist for pairs that actually gossiped, so the map
/// holds O(edges) entries.
#[derive(Debug, Clone)]
enum TimeStore {
    Dense { times: Matrix, observed: Vec<bool> },
    Sparse(BTreeMap<(usize, usize), f64>),
}

/// Worker-side EMA iteration-time state for the whole fleet (the
/// simulation keeps all workers' vectors in one place; on a real
/// deployment each row lives on its worker).
#[derive(Debug, Clone)]
pub struct EmaTimeTracker {
    store: TimeStore,
    beta: f64,
    n: usize,
}

impl EmaTimeTracker {
    /// Creates a dense tracker for `n` workers with smoothing factor
    /// `beta` (`T[m] ← β·T[m] + (1−β)·t`; smaller β forgets faster).
    pub fn new(n: usize, beta: f64) -> Self {
        assert!((0.0..1.0).contains(&beta), "β must be in [0, 1)");
        Self {
            store: TimeStore::Dense { times: Matrix::zeros(n, n), observed: vec![false; n * n] },
            beta,
            n,
        }
    }

    /// Creates a sparse (edge-map) tracker: O(observed pairs) memory.
    pub fn new_sparse(n: usize, beta: f64) -> Self {
        assert!((0.0..1.0).contains(&beta), "β must be in [0, 1)");
        Self { store: TimeStore::Sparse(BTreeMap::new()), beta, n }
    }

    /// Dense below [`DENSE_CONTROL_THRESHOLD`] nodes, sparse above — the
    /// constructor the NetMax behavior uses so small fleets keep the
    /// historical store bit for bit.
    pub fn for_fleet(n: usize, beta: f64) -> Self {
        if n > DENSE_CONTROL_THRESHOLD {
            Self::new_sparse(n, beta)
        } else {
            Self::new(n, beta)
        }
    }

    /// Records a completed iteration of worker `i` with neighbour `m`
    /// taking `t` seconds (Algorithm 2 line 16 / lines 19–22).
    pub fn record(&mut self, i: usize, m: usize, t: f64) {
        assert!(i < self.n && m < self.n && i != m, "bad record indices");
        assert!(t.is_finite() && t >= 0.0, "bad iteration time");
        match &mut self.store {
            TimeStore::Dense { times, observed } => {
                let idx = i * self.n + m;
                if observed[idx] {
                    times[(i, m)] = self.beta * times[(i, m)] + (1.0 - self.beta) * t;
                } else {
                    times[(i, m)] = t;
                    observed[idx] = true;
                }
            }
            TimeStore::Sparse(map) => {
                if let Some(v) = map.get_mut(&(i, m)) {
                    *v = self.beta * *v + (1.0 - self.beta) * t;
                } else {
                    map.insert((i, m), t);
                }
            }
        }
    }

    /// Current EMA estimate for the pair, if any observation exists.
    pub fn get(&self, i: usize, m: usize) -> Option<f64> {
        match &self.store {
            TimeStore::Dense { times, observed } => {
                if observed[i * self.n + m] {
                    Some(times[(i, m)])
                } else {
                    None
                }
            }
            TimeStore::Sparse(map) => map.get(&(i, m)).copied(),
        }
    }

    /// The worst (largest) estimate observed anywhere, or `None` before
    /// the first observation.
    fn worst_observed(&self) -> Option<f64> {
        match &self.store {
            TimeStore::Dense { times, observed } => {
                let n = self.n;
                let worst = (0..n * n)
                    .filter(|&k| observed[k])
                    .map(|k| times[(k / n, k % n)])
                    .fold(0.0f64, f64::max);
                if worst > 0.0 {
                    Some(worst)
                } else {
                    None
                }
            }
            TimeStore::Sparse(map) => {
                let worst = map.values().copied().fold(0.0f64, f64::max);
                if worst > 0.0 {
                    Some(worst)
                } else {
                    None
                }
            }
        }
    }

    /// Assembles the full iteration-time matrix for the policy generator,
    /// filling never-observed neighbour pairs with the worst time observed
    /// anywhere (a pessimistic prior keeps the LP from over-committing to
    /// links nobody has measured); pairs observed in one direction borrow
    /// the reverse direction's estimate first.
    pub fn matrix_for(&self, topo: &Topology) -> Matrix {
        let n = self.n;
        let fallback = self.worst_observed().unwrap_or(1.0);
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for m in 0..n {
                if i == m || !topo.is_edge(i, m) {
                    continue;
                }
                out[(i, m)] = self
                    .get(i, m)
                    .or_else(|| self.get(m, i))
                    .unwrap_or(fallback);
            }
        }
        out
    }

    /// Edge-set counterpart of [`EmaTimeTracker::matrix_for`]: the same
    /// pessimistic-fill and reverse-borrow rules, materialised only over
    /// the topology's live edges (O(edges) work and memory).
    pub fn edge_times_for(&self, topo: &Topology) -> EdgeTimes {
        let n = self.n;
        let fallback = self.worst_observed().unwrap_or(1.0);
        let rows = (0..n)
            .map(|i| {
                topo.neighbors(i)
                    .iter()
                    .map(|&m| {
                        (m, self.get(i, m).or_else(|| self.get(m, i)).unwrap_or(fallback))
                    })
                    .collect()
            })
            .collect();
        EdgeTimes::from_rows(n, rows)
    }

    /// Serializes the tracker's full state for checkpoint/resume. Dense
    /// trackers keep the historical `{times, observed}` shape; sparse
    /// trackers write an `entries` list of `[i, m, t]` triples.
    pub fn checkpoint(&self) -> Json {
        match &self.store {
            TimeStore::Dense { times, observed } => Json::obj([
                ("beta", self.beta.to_json()),
                ("n", self.n.to_json()),
                ("times", matrix_to_json(times)),
                ("observed", observed.to_json()),
            ]),
            TimeStore::Sparse(map) => Json::obj([
                ("beta", self.beta.to_json()),
                ("n", self.n.to_json()),
                (
                    "entries",
                    Json::Arr(
                        map.iter()
                            .map(|(&(i, m), &t)| {
                                Json::Arr(vec![i.to_json(), m.to_json(), t.to_json()])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    /// Rebuilds a tracker from [`EmaTimeTracker::checkpoint`] state
    /// (either store shape).
    pub fn restore(state: &Json) -> Result<Self, JsonError> {
        let n = usize::from_json(state.field("n")?)?;
        let beta = f64::from_json(state.field("beta")?)?;
        if state.get("times").is_some() {
            let observed: Vec<bool> = Vec::from_json(state.field("observed")?)?;
            if observed.len() != n * n {
                return Err(JsonError::schema("tracker observed-flag length mismatch".into()));
            }
            let times = matrix_from_json(state.field("times")?)?;
            if times.rows() != n || times.cols() != n {
                return Err(JsonError::schema(format!(
                    "tracker time matrix is {}x{}, expected {n}x{n}",
                    times.rows(),
                    times.cols()
                )));
            }
            return Ok(Self { store: TimeStore::Dense { times, observed }, beta, n });
        }
        let Json::Arr(entries) = state.field("entries")? else {
            return Err(JsonError::schema("tracker entries must be an array".into()));
        };
        let mut map = BTreeMap::new();
        for e in entries {
            let Json::Arr(triple) = e else {
                return Err(JsonError::schema("tracker entry must be [i, m, t]".into()));
            };
            if triple.len() != 3 {
                return Err(JsonError::schema("tracker entry must be [i, m, t]".into()));
            }
            let i = usize::from_json(&triple[0])?;
            let m = usize::from_json(&triple[1])?;
            if i >= n || m >= n || i == m {
                return Err(JsonError::schema(format!("bad tracker entry ({i}, {m})")));
            }
            map.insert((i, m), f64::from_json(&triple[2])?);
        }
        Ok(Self { store: TimeStore::Sparse(map), beta, n })
    }

    /// Fraction of (ordered, adjacent) pairs with at least one observation.
    pub fn coverage(&self, topo: &Topology) -> f64 {
        self.coverage_over(topo, None)
    }

    /// [`EmaTimeTracker::coverage`] restricted to pairs whose endpoints
    /// are both active (dead rows must not drag coverage below the
    /// monitor's threshold after a crash).
    pub fn coverage_over(&self, topo: &Topology, active: Option<&[bool]>) -> f64 {
        let alive = |i: usize| active.is_none_or(|a| a[i]);
        let mut seen = 0usize;
        let mut total = 0usize;
        for i in 0..self.n {
            if !alive(i) {
                continue;
            }
            for &m in topo.neighbors(i) {
                if alive(m) {
                    total += 1;
                    if self.get(i, m).is_some() {
                        seen += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            seen as f64 / total as f64
        }
    }
}

/// Monitor configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Collection/scheduling period `Ts` in simulated seconds (paper: the
    /// policy is recomputed every 2 minutes).
    pub period_s: f64,
    /// EMA smoothing factor β for the worker-side trackers.
    pub beta: f64,
    /// Policy search resolution.
    pub search: PolicySearchConfig,
}

impl MonitorConfig {
    /// Paper defaults: Ts = 120 s, β = 0.5, K = R = 10.
    pub fn paper_default(alpha: f64) -> Self {
        Self { period_s: 120.0, beta: 0.5, search: PolicySearchConfig::new(alpha) }
    }
}

/// The Network Monitor: wraps the policy generator with collection logic.
#[derive(Debug, Clone)]
pub struct NetworkMonitor {
    cfg: MonitorConfig,
    rounds: u64,
    last: Option<PolicyResult>,
    last_sparse: Option<SparsePolicyResult>,
}

impl NetworkMonitor {
    /// Creates a monitor.
    pub fn new(cfg: MonitorConfig) -> Self {
        Self { cfg, rounds: 0, last: None, last_sparse: None }
    }

    /// The configured period `Ts`.
    pub fn period_s(&self) -> f64 {
        self.cfg.period_s
    }

    /// The configured EMA β.
    pub fn beta(&self) -> f64 {
        self.cfg.beta
    }

    /// Number of completed monitor rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The most recent successful dense policy, if any.
    pub fn last_policy(&self) -> Option<&PolicyResult> {
        self.last.as_ref()
    }

    /// The most recent successful edge-set policy, if any (fleets beyond
    /// [`DENSE_CONTROL_THRESHOLD`] nodes run [`NetworkMonitor::round_sparse`]).
    pub fn last_sparse_policy(&self) -> Option<&SparsePolicyResult> {
        self.last_sparse.as_ref()
    }

    /// Serializes the monitor's mutable counters for checkpoint/resume
    /// (the last produced policy lives with the behavior that applies it).
    pub fn checkpoint(&self) -> Json {
        Json::obj([("rounds", self.rounds.to_json())])
    }

    /// Restores counters captured by [`NetworkMonitor::checkpoint`].
    pub fn restore(&mut self, state: &Json) -> Result<(), JsonError> {
        self.rounds = u64::from_json(state.field("rounds")?)?;
        Ok(())
    }

    /// One monitor round (Algorithm 1 lines 3–6): collect the time matrix
    /// from the tracker, regenerate the policy at the given current
    /// learning rate α, and return the new `(P, ρ)` for dissemination.
    ///
    /// `active` masks dead workers out of the optimisation: the LP of
    /// Eq. 14 is solved over the *live* subgraph only, and the returned
    /// policy assigns exactly zero probability to every link touching a
    /// dead node (dead rows are identity) — the policy layer routes
    /// around outages. With everyone active this is exactly the classic
    /// full-fleet round.
    ///
    /// Returns `None` (keeping the previous policy) when coverage is too
    /// poor, fewer than two live nodes remain, the live subgraph is
    /// disconnected, or the search finds no feasible candidate.
    pub fn round(
        &mut self,
        tracker: &EmaTimeTracker,
        topo: &Topology,
        current_alpha: f64,
        active: &[bool],
    ) -> Option<PolicyResult> {
        self.rounds += 1;
        let search = PolicySearchConfig { alpha: current_alpha, ..self.cfg.search.clone() };
        if active.iter().all(|&a| a) {
            // Until workers have touched a reasonable share of their links
            // the pessimistic fill dominates and the LP would chase noise.
            if tracker.coverage(topo) < 0.5 {
                return None;
            }
            let times = tracker.matrix_for(topo);
            let result = PolicyGenerator::new(search).generate(&times, topo)?;
            self.last = Some(result.clone());
            return Some(result);
        }

        // Masked round: compact the live nodes, optimise over their
        // subgraph, and expand the result back to fleet indices.
        let n = topo.len();
        assert_eq!(active.len(), n, "active mask/topology node count mismatch");
        let idx: Vec<usize> = (0..n).filter(|&i| active[i]).collect();
        if idx.len() < 2 {
            return None;
        }
        let mut sub = Topology::empty(idx.len());
        for a in 0..idx.len() {
            for b in (a + 1)..idx.len() {
                if topo.is_edge(idx[a], idx[b]) {
                    sub.set_edge(a, b, true);
                }
            }
        }
        if !sub.is_connected() {
            return None;
        }
        if tracker.coverage_over(topo, Some(active)) < 0.5 {
            return None;
        }
        let full = tracker.matrix_for(topo);
        let mut times = Matrix::zeros(idx.len(), idx.len());
        for a in 0..idx.len() {
            for b in 0..idx.len() {
                times[(a, b)] = full[(idx[a], idx[b])];
            }
        }
        let result = PolicyGenerator::new(search).generate(&times, &sub)?;
        let mut policy = Matrix::zeros(n, n);
        for i in 0..n {
            if !active[i] {
                // Dead rows are identity: no live node is ever steered to
                // them, and they steer nowhere.
                policy[(i, i)] = 1.0;
            }
        }
        for a in 0..idx.len() {
            for b in 0..idx.len() {
                policy[(idx[a], idx[b])] = result.policy[(a, b)];
            }
        }
        let expanded = PolicyResult { policy, ..result };
        self.last = Some(expanded.clone());
        Some(expanded)
    }

    /// Edge-set counterpart of [`NetworkMonitor::round`] for fleets
    /// beyond [`DENSE_CONTROL_THRESHOLD`] nodes: the time matrix is never
    /// materialised densely, the LP is solved row by row, λ₂ comes from
    /// the sparse power iteration, and the masked-subgraph path compacts
    /// live nodes by walking neighbour lists — every step is O(edges).
    ///
    /// Skip conditions (coverage, live count, connectivity) are the exact
    /// rules of the dense round.
    pub fn round_sparse(
        &mut self,
        tracker: &EmaTimeTracker,
        topo: &Topology,
        current_alpha: f64,
        active: &[bool],
    ) -> Option<SparsePolicyResult> {
        self.rounds += 1;
        let search = PolicySearchConfig { alpha: current_alpha, ..self.cfg.search.clone() };
        if active.iter().all(|&a| a) {
            if tracker.coverage(topo) < 0.5 {
                return None;
            }
            let times = tracker.edge_times_for(topo);
            let result = PolicyGenerator::new(search).generate_sparse(&times, topo)?;
            self.last_sparse = Some(result.clone());
            return Some(result);
        }

        // Masked round: compact the live nodes via neighbour lists,
        // optimise over their subgraph, and expand back to fleet indices
        // with identity rows for the dead.
        let n = topo.len();
        assert_eq!(active.len(), n, "active mask/topology node count mismatch");
        let idx: Vec<usize> = (0..n).filter(|&i| active[i]).collect();
        if idx.len() < 2 {
            return None;
        }
        let mut pos = vec![usize::MAX; n];
        for (a, &i) in idx.iter().enumerate() {
            pos[i] = a;
        }
        let mut sub = Topology::empty(idx.len());
        for (a, &i) in idx.iter().enumerate() {
            for &j in topo.neighbors(i) {
                if j > i && active[j] {
                    sub.set_edge(a, pos[j], true);
                }
            }
        }
        if !sub.is_connected() {
            return None;
        }
        if tracker.coverage_over(topo, Some(active)) < 0.5 {
            return None;
        }
        let full = tracker.edge_times_for(topo);
        let rows: Vec<Vec<(usize, f64)>> = idx
            .iter()
            .map(|&i| {
                full.row(i)
                    .iter()
                    .filter(|&&(j, _)| active[j])
                    .map(|&(j, t)| (pos[j], t))
                    .collect()
            })
            .collect();
        let times = EdgeTimes::from_rows(idx.len(), rows);
        let result = PolicyGenerator::new(search).generate_sparse(&times, &sub)?;
        let mut rows: Vec<Vec<(usize, f64)>> =
            (0..n).map(|i| if active[i] { Vec::new() } else { vec![(i, 1.0)] }).collect();
        for (a, &i) in idx.iter().enumerate() {
            // `idx` is ascending, so mapping compact columns back keeps
            // each row strictly ascending.
            rows[i] = result.policy.row(a).iter().map(|&(b, p)| (idx[b], p)).collect();
        }
        let expanded =
            SparsePolicyResult { policy: SparsePolicy::from_rows(n, rows), ..result };
        self.last_sparse = Some(expanded.clone());
        Some(expanded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ema_first_observation_is_exact() {
        let mut t = EmaTimeTracker::new(3, 0.5);
        assert_eq!(t.get(0, 1), None);
        t.record(0, 1, 2.0);
        assert_eq!(t.get(0, 1), Some(2.0));
    }

    #[test]
    fn ema_smooths_subsequent_observations() {
        let mut t = EmaTimeTracker::new(3, 0.5);
        t.record(0, 1, 2.0);
        t.record(0, 1, 4.0);
        // 0.5·2 + 0.5·4 = 3.
        assert_eq!(t.get(0, 1), Some(3.0));
    }

    #[test]
    fn low_beta_tracks_changes_faster() {
        let run = |beta: f64| {
            let mut t = EmaTimeTracker::new(2, beta);
            t.record(0, 1, 1.0);
            for _ in 0..5 {
                t.record(0, 1, 10.0);
            }
            t.get(0, 1).unwrap()
        };
        assert!(run(0.2) > run(0.9) - 9.0); // sanity
        assert!((run(0.2) - 10.0).abs() < (run(0.9) - 10.0).abs());
    }

    #[test]
    fn matrix_fills_unobserved_pessimistically() {
        let topo = Topology::fully_connected(3);
        let mut t = EmaTimeTracker::new(3, 0.5);
        t.record(0, 1, 1.0);
        t.record(0, 2, 5.0);
        let m = t.matrix_for(&topo);
        assert_eq!(m[(0, 1)], 1.0);
        // (1, 0) borrows the reverse direction.
        assert_eq!(m[(1, 0)], 1.0);
        // (1, 2) never observed in either direction → worst observed (5.0).
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(1, 1)], 0.0);
    }

    #[test]
    fn coverage_counts_ordered_pairs() {
        let topo = Topology::fully_connected(3);
        let mut t = EmaTimeTracker::new(3, 0.5);
        assert_eq!(t.coverage(&topo), 0.0);
        t.record(0, 1, 1.0);
        assert!((t.coverage(&topo) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn monitor_skips_round_on_poor_coverage() {
        let topo = Topology::fully_connected(4);
        let tracker = EmaTimeTracker::new(4, 0.5);
        let mut mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        assert!(mon.round(&tracker, &topo, 0.1, &[true; 4]).is_none());
        assert_eq!(mon.rounds(), 1);
    }

    #[test]
    fn monitor_generates_policy_with_coverage() {
        // Two-server cluster shape: {0,1,2} and {3,4,5} are fast triads,
        // the nine cross links are slow. Every node then has fast options
        // and the optimised policy must favour them (slow links sit at or
        // near their Eq. 11 floor; fast links get the surplus mass).
        let topo = Topology::fully_connected(6);
        let mut tracker = EmaTimeTracker::new(6, 0.5);
        let fast = |i: usize, m: usize| (i / 3) == (m / 3);
        for i in 0..6 {
            for m in 0..6 {
                if i != m {
                    tracker.record(i, m, if fast(i, m) { 0.1 } else { 1.0 });
                }
            }
        }
        let mut mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        let res = mon.round(&tracker, &topo, 0.1, &[true; 6]).expect("policy expected");
        // Aggregate preference per node (simplex optima are vertices, so
        // per-link comparisons are not meaningful).
        for i in 0..6 {
            let (mut fast_sum, mut slow_sum) = (0.0, 0.0);
            for m in 0..6 {
                if i == m {
                    continue;
                }
                if fast(i, m) {
                    fast_sum += res.policy[(i, m)];
                } else {
                    slow_sum += res.policy[(i, m)];
                }
            }
            assert!(fast_sum / 2.0 > slow_sum / 3.0, "node {i}: {:?}", res.policy);
        }
        assert!(mon.last_policy().is_some());
    }

    #[test]
    fn masked_round_zeroes_dead_links_and_keeps_live_rows_stochastic() {
        // Same two-triad fleet, but node 5 is down: the policy must solve
        // the LP over {0..4} only, give node 5 an identity row, and
        // assign exactly zero mass to every link touching it.
        let topo = Topology::fully_connected(6);
        let mut tracker = EmaTimeTracker::new(6, 0.5);
        let fast = |i: usize, m: usize| (i / 3) == (m / 3);
        for i in 0..6 {
            for m in 0..6 {
                if i != m {
                    tracker.record(i, m, if fast(i, m) { 0.1 } else { 1.0 });
                }
            }
        }
        let mut active = [true; 6];
        active[5] = false;
        let mut mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        let res = mon.round(&tracker, &topo, 0.1, &active).expect("masked policy expected");
        for i in 0..5 {
            assert_eq!(res.policy[(i, 5)], 0.0, "live node {i} steered to the dead node");
            assert_eq!(res.policy[(5, i)], 0.0);
            assert!((res.policy.row_sum(i) - 1.0).abs() < 1e-6, "row {i} not stochastic");
        }
        assert_eq!(res.policy[(5, 5)], 1.0, "dead row must be identity");
        assert!(res.lambda2 < 1.0 && res.lambda2 > 0.0);
    }

    #[test]
    fn sparse_tracker_matches_dense_tracker() {
        let topo = Topology::ring(6);
        let mut dense = EmaTimeTracker::new(6, 0.5);
        let mut sparse = EmaTimeTracker::new_sparse(6, 0.5);
        let obs = [(0usize, 1usize, 2.0), (1, 0, 1.5), (0, 1, 4.0), (2, 3, 0.7), (5, 0, 3.0)];
        for &(i, m, t) in &obs {
            dense.record(i, m, t);
            sparse.record(i, m, t);
        }
        for i in 0..6 {
            for m in 0..6 {
                if i != m {
                    assert_eq!(dense.get(i, m), sparse.get(i, m), "pair ({i}, {m})");
                }
            }
        }
        assert_eq!(dense.coverage(&topo), sparse.coverage(&topo));
        // The edge-set view must equal the dense matrix on every live edge
        // (same pessimistic fill, same reverse borrowing) — bit for bit.
        let m = dense.matrix_for(&topo);
        let e = sparse.edge_times_for(&topo);
        for i in 0..6 {
            for &(j, t) in e.row(i) {
                assert_eq!(t, m[(i, j)], "edge ({i}, {j})");
            }
            assert_eq!(e.row(i).len(), topo.neighbors(i).len());
        }
    }

    #[test]
    fn sparse_tracker_checkpoint_round_trips() {
        let mut t = EmaTimeTracker::new_sparse(80, 0.5);
        t.record(0, 1, 2.0);
        t.record(0, 1, 4.0);
        t.record(79, 3, 0.25);
        let restored = EmaTimeTracker::restore(&t.checkpoint()).expect("restore");
        assert_eq!(restored.get(0, 1), Some(3.0));
        assert_eq!(restored.get(79, 3), Some(0.25));
        assert_eq!(restored.get(1, 0), None);
        // And the restored tracker keeps smoothing with the same β.
        let mut r = restored;
        r.record(0, 1, 5.0);
        assert_eq!(r.get(0, 1), Some(4.0));
    }

    #[test]
    fn round_sparse_matches_dense_round_when_all_active() {
        // Same two-triad fleet as `monitor_generates_policy_with_coverage`.
        // The candidate bounds are float-identical and the per-row LP is
        // bit-identical to the joint dense solve, so the selected policy
        // must match the dense round entry for entry.
        let topo = Topology::fully_connected(6);
        let mut tracker = EmaTimeTracker::new(6, 0.5);
        let fast = |i: usize, m: usize| (i / 3) == (m / 3);
        for i in 0..6 {
            for m in 0..6 {
                if i != m {
                    tracker.record(i, m, if fast(i, m) { 0.1 } else { 1.0 });
                }
            }
        }
        let mut dense_mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        let mut sparse_mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        let d = dense_mon.round(&tracker, &topo, 0.1, &[true; 6]).expect("dense policy");
        let s = sparse_mon.round_sparse(&tracker, &topo, 0.1, &[true; 6]).expect("sparse policy");
        assert_eq!(s.rho, d.rho, "selected ρ diverged");
        assert_eq!(s.t_bar, d.t_bar, "selected t̄ diverged");
        assert_eq!(s.policy.to_dense().as_slice(), d.policy.as_slice(), "policy diverged");
        // λ₂ itself comes from a different solver (power iteration vs
        // Jacobi), so it is close, not bit-equal.
        assert!((s.lambda2 - d.lambda2).abs() < 1e-6, "{} vs {}", s.lambda2, d.lambda2);
        assert!(sparse_mon.last_sparse_policy().is_some());
    }

    #[test]
    fn round_sparse_masked_zeroes_dead_links_and_matches_dense_masked_round() {
        let topo = Topology::fully_connected(6);
        let mut tracker = EmaTimeTracker::new(6, 0.5);
        let fast = |i: usize, m: usize| (i / 3) == (m / 3);
        for i in 0..6 {
            for m in 0..6 {
                if i != m {
                    tracker.record(i, m, if fast(i, m) { 0.1 } else { 1.0 });
                }
            }
        }
        let mut active = [true; 6];
        active[5] = false;
        let mut dense_mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        let mut sparse_mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        let d = dense_mon.round(&tracker, &topo, 0.1, &active).expect("dense masked policy");
        let s =
            sparse_mon.round_sparse(&tracker, &topo, 0.1, &active).expect("sparse masked policy");
        assert_eq!(s.rho, d.rho);
        assert_eq!(s.policy.to_dense().as_slice(), d.policy.as_slice());
        for i in 0..5 {
            assert_eq!(s.policy.get(i, 5), 0.0, "live node {i} steered to the dead node");
            assert_eq!(s.policy.get(5, i), 0.0);
            assert!((s.policy.row_sum(i) - 1.0).abs() < 1e-6, "row {i} not stochastic");
        }
        assert_eq!(s.policy.get(5, 5), 1.0, "dead row must be identity");
        // Dead row carries no off-diagonal entries at all in the sparse
        // representation — the structural guarantee the n = 4096 fleet
        // relies on for O(edges) memory.
        assert_eq!(s.policy.row(5), &[(5, 1.0)]);
    }

    #[test]
    fn round_sparse_applies_the_same_skip_rules_as_the_dense_round() {
        let topo = Topology::fully_connected(4);
        let mut mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        // Poor coverage → skip (but the round still counts).
        let empty = EmaTimeTracker::new_sparse(4, 0.5);
        assert!(mon.round_sparse(&empty, &topo, 0.1, &[true; 4]).is_none());
        assert_eq!(mon.rounds(), 1);
        let mut tracker = EmaTimeTracker::new_sparse(4, 0.5);
        for i in 0..4 {
            for m in 0..4 {
                if i != m {
                    tracker.record(i, m, 1.0);
                }
            }
        }
        // One live node: nothing to optimise.
        assert!(mon
            .round_sparse(&tracker, &topo, 0.1, &[true, false, false, false])
            .is_none());
        // Live nodes 0 and 2 on the 4-ring are not adjacent: disconnected.
        assert!(mon
            .round_sparse(&tracker, &Topology::ring(4), 0.1, &[true, false, true, false])
            .is_none());
    }

    #[test]
    fn masked_round_needs_two_live_nodes_and_a_connected_live_subgraph() {
        let mut tracker = EmaTimeTracker::new(4, 0.5);
        for i in 0..4 {
            for m in 0..4 {
                if i != m {
                    tracker.record(i, m, 1.0);
                }
            }
        }
        let mut mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        // One live node: nothing to optimise.
        assert!(mon
            .round(&tracker, &Topology::fully_connected(4), 0.1, &[true, false, false, false])
            .is_none());
        // Live nodes 0 and 2 on the 4-ring are not adjacent: the live
        // subgraph is disconnected.
        assert!(mon
            .round(&tracker, &Topology::ring(4), 0.1, &[true, false, true, false])
            .is_none());
    }
}
