//! The Network Monitor — Algorithm 1.
//!
//! The monitor is the only centralised component of NetMax, and it is
//! deliberately *not* a parameter server: "it only collects a small amount
//! of time-related statistics for evaluating the network condition"
//! (§III-A). Every period `Ts` it gathers the workers' EMA iteration-time
//! vectors into the matrix `[t_{i,m}]`, runs the policy generator
//! (Algorithm 3), and disseminates the resulting `(P, ρ)`.
//!
//! [`EmaTimeTracker`] implements the worker-side `UPDATETIMEVECTOR`
//! procedure (Algorithm 2 lines 19–22): an exponential moving average per
//! (node, neighbour) pair whose smoothing factor β trades recency against
//! stability.

use crate::engine::session::{matrix_from_json, matrix_to_json};
use crate::policy::{PolicyGenerator, PolicyResult, PolicySearchConfig};
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_linalg::Matrix;
use netmax_net::Topology;
use serde::{Deserialize, Serialize};

/// Worker-side EMA iteration-time state for the whole fleet (the
/// simulation keeps all workers' vectors in one place; on a real
/// deployment each row lives on its worker).
#[derive(Debug, Clone)]
pub struct EmaTimeTracker {
    times: Matrix,
    observed: Vec<bool>,
    beta: f64,
    n: usize,
}

impl EmaTimeTracker {
    /// Creates a tracker for `n` workers with smoothing factor `beta`
    /// (`T[m] ← β·T[m] + (1−β)·t`; smaller β forgets faster).
    pub fn new(n: usize, beta: f64) -> Self {
        assert!((0.0..1.0).contains(&beta), "β must be in [0, 1)");
        Self { times: Matrix::zeros(n, n), observed: vec![false; n * n], beta, n }
    }

    /// Records a completed iteration of worker `i` with neighbour `m`
    /// taking `t` seconds (Algorithm 2 line 16 / lines 19–22).
    pub fn record(&mut self, i: usize, m: usize, t: f64) {
        assert!(i < self.n && m < self.n && i != m, "bad record indices");
        assert!(t.is_finite() && t >= 0.0, "bad iteration time");
        let idx = i * self.n + m;
        if self.observed[idx] {
            self.times[(i, m)] = self.beta * self.times[(i, m)] + (1.0 - self.beta) * t;
        } else {
            self.times[(i, m)] = t;
            self.observed[idx] = true;
        }
    }

    /// Current EMA estimate for the pair, if any observation exists.
    pub fn get(&self, i: usize, m: usize) -> Option<f64> {
        if self.observed[i * self.n + m] {
            Some(self.times[(i, m)])
        } else {
            None
        }
    }

    /// Assembles the full iteration-time matrix for the policy generator,
    /// filling never-observed neighbour pairs with the worst time observed
    /// anywhere (a pessimistic prior keeps the LP from over-committing to
    /// links nobody has measured); pairs observed in one direction borrow
    /// the reverse direction's estimate first.
    pub fn matrix_for(&self, topo: &Topology) -> Matrix {
        let n = self.n;
        let worst = (0..n * n)
            .filter(|&k| self.observed[k])
            .map(|k| self.times[(k / n, k % n)])
            .fold(0.0f64, f64::max);
        let fallback = if worst > 0.0 { worst } else { 1.0 };
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for m in 0..n {
                if i == m || !topo.is_edge(i, m) {
                    continue;
                }
                out[(i, m)] = self
                    .get(i, m)
                    .or_else(|| self.get(m, i))
                    .unwrap_or(fallback);
            }
        }
        out
    }

    /// Serializes the tracker's full state for checkpoint/resume.
    pub fn checkpoint(&self) -> Json {
        Json::obj([
            ("beta", self.beta.to_json()),
            ("n", self.n.to_json()),
            ("times", matrix_to_json(&self.times)),
            ("observed", self.observed.to_json()),
        ])
    }

    /// Rebuilds a tracker from [`EmaTimeTracker::checkpoint`] state.
    pub fn restore(state: &Json) -> Result<Self, JsonError> {
        let n = usize::from_json(state.field("n")?)?;
        let observed: Vec<bool> = Vec::from_json(state.field("observed")?)?;
        if observed.len() != n * n {
            return Err(JsonError::schema("tracker observed-flag length mismatch".into()));
        }
        let times = matrix_from_json(state.field("times")?)?;
        if times.rows() != n || times.cols() != n {
            return Err(JsonError::schema(format!(
                "tracker time matrix is {}x{}, expected {n}x{n}",
                times.rows(),
                times.cols()
            )));
        }
        Ok(Self {
            times,
            observed,
            beta: f64::from_json(state.field("beta")?)?,
            n,
        })
    }

    /// Fraction of (ordered, adjacent) pairs with at least one observation.
    pub fn coverage(&self, topo: &Topology) -> f64 {
        self.coverage_over(topo, None)
    }

    /// [`EmaTimeTracker::coverage`] restricted to pairs whose endpoints
    /// are both active (dead rows must not drag coverage below the
    /// monitor's threshold after a crash).
    pub fn coverage_over(&self, topo: &Topology, active: Option<&[bool]>) -> f64 {
        let alive = |i: usize| active.is_none_or(|a| a[i]);
        let mut seen = 0usize;
        let mut total = 0usize;
        for i in 0..self.n {
            for m in 0..self.n {
                if i != m && topo.is_edge(i, m) && alive(i) && alive(m) {
                    total += 1;
                    if self.observed[i * self.n + m] {
                        seen += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            seen as f64 / total as f64
        }
    }
}

/// Monitor configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Collection/scheduling period `Ts` in simulated seconds (paper: the
    /// policy is recomputed every 2 minutes).
    pub period_s: f64,
    /// EMA smoothing factor β for the worker-side trackers.
    pub beta: f64,
    /// Policy search resolution.
    pub search: PolicySearchConfig,
}

impl MonitorConfig {
    /// Paper defaults: Ts = 120 s, β = 0.5, K = R = 10.
    pub fn paper_default(alpha: f64) -> Self {
        Self { period_s: 120.0, beta: 0.5, search: PolicySearchConfig::new(alpha) }
    }
}

/// The Network Monitor: wraps the policy generator with collection logic.
#[derive(Debug, Clone)]
pub struct NetworkMonitor {
    cfg: MonitorConfig,
    rounds: u64,
    last: Option<PolicyResult>,
}

impl NetworkMonitor {
    /// Creates a monitor.
    pub fn new(cfg: MonitorConfig) -> Self {
        Self { cfg, rounds: 0, last: None }
    }

    /// The configured period `Ts`.
    pub fn period_s(&self) -> f64 {
        self.cfg.period_s
    }

    /// The configured EMA β.
    pub fn beta(&self) -> f64 {
        self.cfg.beta
    }

    /// Number of completed monitor rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The most recent successful policy, if any.
    pub fn last_policy(&self) -> Option<&PolicyResult> {
        self.last.as_ref()
    }

    /// Serializes the monitor's mutable counters for checkpoint/resume
    /// (the last produced policy lives with the behavior that applies it).
    pub fn checkpoint(&self) -> Json {
        Json::obj([("rounds", self.rounds.to_json())])
    }

    /// Restores counters captured by [`NetworkMonitor::checkpoint`].
    pub fn restore(&mut self, state: &Json) -> Result<(), JsonError> {
        self.rounds = u64::from_json(state.field("rounds")?)?;
        Ok(())
    }

    /// One monitor round (Algorithm 1 lines 3–6): collect the time matrix
    /// from the tracker, regenerate the policy at the given current
    /// learning rate α, and return the new `(P, ρ)` for dissemination.
    ///
    /// `active` masks dead workers out of the optimisation: the LP of
    /// Eq. 14 is solved over the *live* subgraph only, and the returned
    /// policy assigns exactly zero probability to every link touching a
    /// dead node (dead rows are identity) — the policy layer routes
    /// around outages. With everyone active this is exactly the classic
    /// full-fleet round.
    ///
    /// Returns `None` (keeping the previous policy) when coverage is too
    /// poor, fewer than two live nodes remain, the live subgraph is
    /// disconnected, or the search finds no feasible candidate.
    pub fn round(
        &mut self,
        tracker: &EmaTimeTracker,
        topo: &Topology,
        current_alpha: f64,
        active: &[bool],
    ) -> Option<PolicyResult> {
        self.rounds += 1;
        let search = PolicySearchConfig { alpha: current_alpha, ..self.cfg.search.clone() };
        if active.iter().all(|&a| a) {
            // Until workers have touched a reasonable share of their links
            // the pessimistic fill dominates and the LP would chase noise.
            if tracker.coverage(topo) < 0.5 {
                return None;
            }
            let times = tracker.matrix_for(topo);
            let result = PolicyGenerator::new(search).generate(&times, topo)?;
            self.last = Some(result.clone());
            return Some(result);
        }

        // Masked round: compact the live nodes, optimise over their
        // subgraph, and expand the result back to fleet indices.
        let n = topo.len();
        assert_eq!(active.len(), n, "active mask/topology node count mismatch");
        let idx: Vec<usize> = (0..n).filter(|&i| active[i]).collect();
        if idx.len() < 2 {
            return None;
        }
        let mut sub = Topology::empty(idx.len());
        for a in 0..idx.len() {
            for b in (a + 1)..idx.len() {
                if topo.is_edge(idx[a], idx[b]) {
                    sub.set_edge(a, b, true);
                }
            }
        }
        if !sub.is_connected() {
            return None;
        }
        if tracker.coverage_over(topo, Some(active)) < 0.5 {
            return None;
        }
        let full = tracker.matrix_for(topo);
        let mut times = Matrix::zeros(idx.len(), idx.len());
        for a in 0..idx.len() {
            for b in 0..idx.len() {
                times[(a, b)] = full[(idx[a], idx[b])];
            }
        }
        let result = PolicyGenerator::new(search).generate(&times, &sub)?;
        let mut policy = Matrix::zeros(n, n);
        for i in 0..n {
            if !active[i] {
                // Dead rows are identity: no live node is ever steered to
                // them, and they steer nowhere.
                policy[(i, i)] = 1.0;
            }
        }
        for a in 0..idx.len() {
            for b in 0..idx.len() {
                policy[(idx[a], idx[b])] = result.policy[(a, b)];
            }
        }
        let expanded = PolicyResult { policy, ..result };
        self.last = Some(expanded.clone());
        Some(expanded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ema_first_observation_is_exact() {
        let mut t = EmaTimeTracker::new(3, 0.5);
        assert_eq!(t.get(0, 1), None);
        t.record(0, 1, 2.0);
        assert_eq!(t.get(0, 1), Some(2.0));
    }

    #[test]
    fn ema_smooths_subsequent_observations() {
        let mut t = EmaTimeTracker::new(3, 0.5);
        t.record(0, 1, 2.0);
        t.record(0, 1, 4.0);
        // 0.5·2 + 0.5·4 = 3.
        assert_eq!(t.get(0, 1), Some(3.0));
    }

    #[test]
    fn low_beta_tracks_changes_faster() {
        let run = |beta: f64| {
            let mut t = EmaTimeTracker::new(2, beta);
            t.record(0, 1, 1.0);
            for _ in 0..5 {
                t.record(0, 1, 10.0);
            }
            t.get(0, 1).unwrap()
        };
        assert!(run(0.2) > run(0.9) - 9.0); // sanity
        assert!((run(0.2) - 10.0).abs() < (run(0.9) - 10.0).abs());
    }

    #[test]
    fn matrix_fills_unobserved_pessimistically() {
        let topo = Topology::fully_connected(3);
        let mut t = EmaTimeTracker::new(3, 0.5);
        t.record(0, 1, 1.0);
        t.record(0, 2, 5.0);
        let m = t.matrix_for(&topo);
        assert_eq!(m[(0, 1)], 1.0);
        // (1, 0) borrows the reverse direction.
        assert_eq!(m[(1, 0)], 1.0);
        // (1, 2) never observed in either direction → worst observed (5.0).
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(1, 1)], 0.0);
    }

    #[test]
    fn coverage_counts_ordered_pairs() {
        let topo = Topology::fully_connected(3);
        let mut t = EmaTimeTracker::new(3, 0.5);
        assert_eq!(t.coverage(&topo), 0.0);
        t.record(0, 1, 1.0);
        assert!((t.coverage(&topo) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn monitor_skips_round_on_poor_coverage() {
        let topo = Topology::fully_connected(4);
        let tracker = EmaTimeTracker::new(4, 0.5);
        let mut mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        assert!(mon.round(&tracker, &topo, 0.1, &[true; 4]).is_none());
        assert_eq!(mon.rounds(), 1);
    }

    #[test]
    fn monitor_generates_policy_with_coverage() {
        // Two-server cluster shape: {0,1,2} and {3,4,5} are fast triads,
        // the nine cross links are slow. Every node then has fast options
        // and the optimised policy must favour them (slow links sit at or
        // near their Eq. 11 floor; fast links get the surplus mass).
        let topo = Topology::fully_connected(6);
        let mut tracker = EmaTimeTracker::new(6, 0.5);
        let fast = |i: usize, m: usize| (i / 3) == (m / 3);
        for i in 0..6 {
            for m in 0..6 {
                if i != m {
                    tracker.record(i, m, if fast(i, m) { 0.1 } else { 1.0 });
                }
            }
        }
        let mut mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        let res = mon.round(&tracker, &topo, 0.1, &[true; 6]).expect("policy expected");
        // Aggregate preference per node (simplex optima are vertices, so
        // per-link comparisons are not meaningful).
        for i in 0..6 {
            let (mut fast_sum, mut slow_sum) = (0.0, 0.0);
            for m in 0..6 {
                if i == m {
                    continue;
                }
                if fast(i, m) {
                    fast_sum += res.policy[(i, m)];
                } else {
                    slow_sum += res.policy[(i, m)];
                }
            }
            assert!(fast_sum / 2.0 > slow_sum / 3.0, "node {i}: {:?}", res.policy);
        }
        assert!(mon.last_policy().is_some());
    }

    #[test]
    fn masked_round_zeroes_dead_links_and_keeps_live_rows_stochastic() {
        // Same two-triad fleet, but node 5 is down: the policy must solve
        // the LP over {0..4} only, give node 5 an identity row, and
        // assign exactly zero mass to every link touching it.
        let topo = Topology::fully_connected(6);
        let mut tracker = EmaTimeTracker::new(6, 0.5);
        let fast = |i: usize, m: usize| (i / 3) == (m / 3);
        for i in 0..6 {
            for m in 0..6 {
                if i != m {
                    tracker.record(i, m, if fast(i, m) { 0.1 } else { 1.0 });
                }
            }
        }
        let mut active = [true; 6];
        active[5] = false;
        let mut mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        let res = mon.round(&tracker, &topo, 0.1, &active).expect("masked policy expected");
        for i in 0..5 {
            assert_eq!(res.policy[(i, 5)], 0.0, "live node {i} steered to the dead node");
            assert_eq!(res.policy[(5, i)], 0.0);
            assert!((res.policy.row_sum(i) - 1.0).abs() < 1e-6, "row {i} not stochastic");
        }
        assert_eq!(res.policy[(5, 5)], 1.0, "dead row must be identity");
        assert!(res.lambda2 < 1.0 && res.lambda2 > 0.0);
    }

    #[test]
    fn masked_round_needs_two_live_nodes_and_a_connected_live_subgraph() {
        let mut tracker = EmaTimeTracker::new(4, 0.5);
        for i in 0..4 {
            for m in 0..4 {
                if i != m {
                    tracker.record(i, m, 1.0);
                }
            }
        }
        let mut mon = NetworkMonitor::new(MonitorConfig::paper_default(0.1));
        // One live node: nothing to optimise.
        assert!(mon
            .round(&tracker, &Topology::fully_connected(4), 0.1, &[true, false, false, false])
            .is_none());
        // Live nodes 0 and 2 on the 4-ring are not adjacent: the live
        // subgraph is disconnected.
        assert!(mon
            .round(&tracker, &Topology::ring(4), 0.1, &[true, false, true, false])
            .is_none());
    }
}
