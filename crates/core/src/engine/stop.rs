//! Declarative stop conditions for training sessions.
//!
//! The paper's harness stops a run on "epochs reached" or a generous
//! simulated-time safety net; a production control loop needs richer
//! vocabulary — step budgets, loss targets, accuracy targets, and
//! compositions of all of them. [`StopCondition`] is that vocabulary: a
//! pure-data expression tree evaluated by the
//! [`Session`](super::session::Session) after every global step and after
//! every recorded sample, serializable like every other piece of
//! configuration.

use super::environment::Environment;
use super::recorder::Sample;
use super::session::SessionError;
use netmax_json::{FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// When a training session should stop.
///
/// Environment-derived conditions (`MaxEpochs`, `MaxSimSeconds`,
/// `MaxGlobalSteps`) are checked after every global step. Metric-derived
/// conditions (`LossBelow`, `AccuracyAtLeast`) are checked against the most
/// recent recorded [`Sample`], so they take effect at the recording cadence
/// of [`TrainConfig`](super::config::TrainConfig) (and, for accuracy, at
/// the test-evaluation cadence within it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StopCondition {
    /// Stop when the mean per-node epoch count reaches the bound.
    MaxEpochs(f64),
    /// Stop when the simulated wall-clock reaches the bound (seconds).
    MaxSimSeconds(f64),
    /// Stop when the global step counter `k` reaches the bound.
    MaxGlobalSteps(u64),
    /// Stop when a recorded sample's training loss is at or below the
    /// target.
    LossBelow(f64),
    /// Stop when a recorded sample's test accuracy is at or above the
    /// target (only samples that evaluated accuracy count).
    AccuracyAtLeast(f64),
    /// Stop when *every* sub-condition holds.
    All(Vec<StopCondition>),
    /// Stop when *any* sub-condition holds.
    Any(Vec<StopCondition>),
}

impl StopCondition {
    /// Evaluates the condition against the environment and the most recent
    /// recorded sample (if any).
    pub fn satisfied(&self, env: &Environment, latest: Option<&Sample>) -> bool {
        match self {
            StopCondition::MaxEpochs(e) => env.mean_epoch() >= *e,
            StopCondition::MaxSimSeconds(s) => env.wall_clock() >= *s,
            StopCondition::MaxGlobalSteps(k) => env.global_step >= *k,
            StopCondition::LossBelow(l) => latest.is_some_and(|s| s.train_loss <= *l),
            StopCondition::AccuracyAtLeast(a) => {
                latest.and_then(|s| s.test_accuracy).is_some_and(|x| x >= *a)
            }
            StopCondition::All(cs) => cs.iter().all(|c| c.satisfied(env, latest)),
            StopCondition::Any(cs) => cs.iter().any(|c| c.satisfied(env, latest)),
        }
    }

    /// Validates the condition tree: budgets must be finite and positive,
    /// targets finite, and compositions must not be empty — an empty
    /// `All` is vacuously true (stops before the first step), an empty
    /// `Any` is never satisfiable (a session stopped by nothing else
    /// would run forever).
    pub fn validate(&self) -> Result<(), SessionError> {
        let bad = |msg: String| Err(SessionError::InvalidConfig(msg));
        match self {
            StopCondition::MaxEpochs(e) if !(e.is_finite() && *e > 0.0) => {
                bad(format!("max_epochs bound must be finite and positive, got {e}"))
            }
            StopCondition::MaxSimSeconds(s) if !(s.is_finite() && *s > 0.0) => {
                bad(format!("max_sim_seconds bound must be finite and positive, got {s}"))
            }
            StopCondition::MaxGlobalSteps(0) => {
                bad("max_global_steps bound must be positive".into())
            }
            StopCondition::LossBelow(l) if !l.is_finite() => {
                bad(format!("loss target must be finite, got {l}"))
            }
            StopCondition::AccuracyAtLeast(a) if !a.is_finite() => {
                bad(format!("accuracy target must be finite, got {a}"))
            }
            StopCondition::All(cs) => {
                if cs.is_empty() {
                    return bad("empty `all` stop condition is vacuously true".into());
                }
                cs.iter().try_for_each(StopCondition::validate)
            }
            StopCondition::Any(cs) => {
                if cs.is_empty() {
                    return bad("empty `any` stop condition is never satisfiable".into());
                }
                cs.iter().try_for_each(StopCondition::validate)
            }
            _ => Ok(()),
        }
    }
}

impl ToJson for StopCondition {
    fn to_json(&self) -> Json {
        match self {
            StopCondition::MaxEpochs(e) => Json::obj([("max_epochs", e.to_json())]),
            StopCondition::MaxSimSeconds(s) => Json::obj([("max_sim_seconds", s.to_json())]),
            StopCondition::MaxGlobalSteps(k) => Json::obj([("max_global_steps", k.to_json())]),
            StopCondition::LossBelow(l) => Json::obj([("loss_below", l.to_json())]),
            StopCondition::AccuracyAtLeast(a) => {
                Json::obj([("accuracy_at_least", a.to_json())])
            }
            StopCondition::All(cs) => Json::obj([("all", cs.to_json())]),
            StopCondition::Any(cs) => Json::obj([("any", cs.to_json())]),
        }
    }
}

impl FromJson for StopCondition {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(e) = v.get("max_epochs") {
            Ok(StopCondition::MaxEpochs(f64::from_json(e)?))
        } else if let Some(s) = v.get("max_sim_seconds") {
            Ok(StopCondition::MaxSimSeconds(f64::from_json(s)?))
        } else if let Some(k) = v.get("max_global_steps") {
            Ok(StopCondition::MaxGlobalSteps(u64::from_json(k)?))
        } else if let Some(l) = v.get("loss_below") {
            Ok(StopCondition::LossBelow(f64::from_json(l)?))
        } else if let Some(a) = v.get("accuracy_at_least") {
            Ok(StopCondition::AccuracyAtLeast(f64::from_json(a)?))
        } else if let Some(cs) = v.get("all") {
            Ok(StopCondition::All(Vec::from_json(cs)?))
        } else if let Some(cs) = v.get("any") {
            Ok(StopCondition::Any(Vec::from_json(cs)?))
        } else {
            Err(JsonError::schema("unknown stop condition variant".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let cond = StopCondition::Any(vec![
            StopCondition::All(vec![
                StopCondition::MaxEpochs(12.5),
                StopCondition::LossBelow(0.42),
            ]),
            StopCondition::MaxSimSeconds(3600.0),
            StopCondition::MaxGlobalSteps(100_000),
            StopCondition::AccuracyAtLeast(0.9),
        ]);
        let text = cond.to_json().pretty();
        let back = StopCondition::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cond);
    }

    #[test]
    fn validation_rejects_degenerate_conditions() {
        assert!(StopCondition::MaxEpochs(0.0).validate().is_err());
        assert!(StopCondition::MaxSimSeconds(f64::INFINITY).validate().is_err());
        assert!(StopCondition::MaxGlobalSteps(0).validate().is_err());
        assert!(StopCondition::LossBelow(f64::NAN).validate().is_err());
        assert!(StopCondition::All(vec![]).validate().is_err());
        assert!(StopCondition::Any(vec![]).validate().is_err());
        assert!(StopCondition::Any(vec![StopCondition::MaxEpochs(-1.0)])
            .validate()
            .is_err());
        assert!(StopCondition::Any(vec![
            StopCondition::MaxEpochs(2.0),
            StopCondition::MaxSimSeconds(10.0)
        ])
        .validate()
        .is_ok());
    }
}
