//! The asynchronous gossip driver.
//!
//! NetMax, AD-PSGD, GoSGD, and SAPS-PSGD share the same execution
//! skeleton (§III-B): every worker loops { pick a peer, pull its model
//! while computing local gradients, apply the two-step update }, entirely
//! asynchronously. [`GossipDriver`] implements that skeleton once over the
//! virtual clock as a step-wise [`SessionDriver`]; the algorithms differ
//! only in *how peers are selected* and *how pulled parameters are
//! merged* — the two required methods of [`GossipBehavior`].
//!
//! Staleness is modelled faithfully: the parameters a worker merges are
//! whatever its peer holds at the *completion* time of the pull, exactly
//! like the freshest-parameter semantics of Algorithm 2 line 10/12.
//!
//! Scheduling of a worker's *next* iteration is deferred to the driver
//! advance that follows its completion event. That keeps the RNG draw for
//! peer selection on the far side of the session's stop check — exactly
//! where the classic blocking loop made it — so step-wise execution,
//! checkpoint/resume, and the old `run_gossip` all consume byte-identical
//! random streams.

use super::environment::Environment;
use super::recorder::RunReport;
use super::session::{DriverEvent, Session, SessionDriver, SessionError};
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_net::EventQueue;

/// A worker's choice at the start of an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerChoice {
    /// Pull from neighbour `m` this iteration.
    Peer(usize),
    /// Self-selection (`p_{i,i}`): a gradient-only iteration with no
    /// communication.
    SelfStep,
}

/// Algorithm-specific hooks plugged into the gossip driver.
pub trait GossipBehavior {
    /// Chooses the peer node `i` communicates with this iteration
    /// (Algorithm 2 line 9).
    fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice;

    /// Merges the pulled parameters into node `i`'s replica
    /// (Algorithm 2 lines 13–15 for NetMax; plain averaging for AD-PSGD).
    fn merge(&mut self, env: &mut Environment, i: usize, m: usize, pulled: &[f32]);

    /// Called once before the first iteration is scheduled; the place for
    /// warm-up work (probing links, resetting trackers). Must not draw
    /// from the environment's RNG streams — restore re-runs it to rebuild
    /// derived state before overwriting with the checkpoint.
    fn on_start(&mut self, _env: &mut Environment) {}

    /// Called after node `i` completes an iteration, with the realised
    /// iteration time (drives the EMA of Algorithm 2 line 16).
    fn on_iteration(&mut self, _env: &Environment, _i: usize, _peer: Option<usize>, _t: f64) {}

    /// Called after a membership transition (node crash or rejoin); the
    /// environment's active flags are already updated. Behaviors that
    /// hold per-node state (policies, trackers) may react here; the
    /// default is a no-op — peer selection already consults the active
    /// set through the environment.
    fn on_membership_change(&mut self, _env: &mut Environment, _node: usize, _active: bool) {}

    /// If `Some(Ts)`, a Network-Monitor event fires every `Ts` simulated
    /// seconds (Algorithm 1's collection period).
    fn monitor_period(&self) -> Option<f64> {
        None
    }

    /// Handles a Network-Monitor firing (collect times, regenerate and
    /// disseminate the policy).
    fn on_monitor(&mut self, _env: &mut Environment, _now: f64) {}

    /// Serializes algorithm-internal mutable state (policies, trackers,
    /// counters) for checkpointing. Default: no state (`Json::Null`).
    fn checkpoint_state(&self) -> Json {
        Json::Null
    }

    /// Restores state captured by [`GossipBehavior::checkpoint_state`].
    /// Runs after [`GossipBehavior::on_start`] rebuilt derived state, so
    /// stateless behaviors need no override. Default: no-op.
    fn restore_state(&mut self, _env: &Environment, _state: &Json) -> Result<(), JsonError> {
        Ok(())
    }
}

impl<B: GossipBehavior + ?Sized> GossipBehavior for &mut B {
    fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice {
        (**self).select_peer(env, i)
    }
    fn merge(&mut self, env: &mut Environment, i: usize, m: usize, pulled: &[f32]) {
        (**self).merge(env, i, m, pulled)
    }
    fn on_start(&mut self, env: &mut Environment) {
        (**self).on_start(env)
    }
    fn on_iteration(&mut self, env: &Environment, i: usize, peer: Option<usize>, t: f64) {
        (**self).on_iteration(env, i, peer, t)
    }
    fn on_membership_change(&mut self, env: &mut Environment, node: usize, active: bool) {
        (**self).on_membership_change(env, node, active)
    }
    fn monitor_period(&self) -> Option<f64> {
        (**self).monitor_period()
    }
    fn on_monitor(&mut self, env: &mut Environment, now: f64) {
        (**self).on_monitor(env, now)
    }
    fn checkpoint_state(&self) -> Json {
        (**self).checkpoint_state()
    }
    fn restore_state(&mut self, env: &Environment, state: &Json) -> Result<(), JsonError> {
        (**self).restore_state(env, state)
    }
}

/// One scheduled completion in the gossip event queue.
#[derive(Debug, Clone)]
enum Ev {
    NodeDone { node: usize, peer: Option<usize>, compute_s: f64, iteration_s: f64 },
    Monitor,
}

impl ToJson for Ev {
    fn to_json(&self) -> Json {
        match self {
            Ev::Monitor => Json::Str("monitor".into()),
            Ev::NodeDone { node, peer, compute_s, iteration_s } => Json::obj([
                ("node", node.to_json()),
                ("peer", peer.to_json()),
                ("compute_s", compute_s.to_json()),
                ("iteration_s", iteration_s.to_json()),
            ]),
        }
    }
}

impl FromJson for Ev {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s == "monitor" => Ok(Ev::Monitor),
            Json::Obj(_) => Ok(Ev::NodeDone {
                node: usize::from_json(v.field("node")?)?,
                peer: Option::from_json(v.field("peer")?)?,
                compute_s: f64::from_json(v.field("compute_s")?)?,
                iteration_s: f64::from_json(v.field("iteration_s")?)?,
            }),
            other => Err(JsonError::schema(format!("expected event, got {}", other.kind()))),
        }
    }
}

/// Serializes an event queue (entries with explicit FIFO sequence
/// numbers, plus the next sequence counter) for a driver checkpoint.
pub fn queue_to_json<E: ToJson>(queue: &EventQueue<E>) -> Json {
    Json::obj([
        (
            "entries",
            Json::Arr(
                queue
                    .entries()
                    .into_iter()
                    .map(|(time, seq, ev)| {
                        Json::obj([
                            ("time", time.to_json()),
                            ("seq", seq.to_json()),
                            ("event", ev.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("next_seq", queue.next_seq().to_json()),
    ])
}

/// Checks a checkpointed worker index against the environment's node
/// count, so corrupt documents surface as typed errors rather than
/// out-of-bounds panics mid-run.
pub fn check_node_index(node: usize, num_nodes: usize) -> Result<(), JsonError> {
    if node >= num_nodes {
        return Err(JsonError::schema(format!(
            "checkpoint references node {node}, environment has {num_nodes}"
        )));
    }
    Ok(())
}

/// Rebuilds an event queue without the entries `keep` rejects, preserving
/// every surviving entry's time and FIFO sequence number (and the next
/// sequence counter) so determinism is unaffected. Drivers use this to
/// remove a crashed node's in-flight events *at crash time* — a lazy
/// active-flag check at pop time would mistake a stale pre-crash event
/// for a live one when the node rejoins before it pops.
pub fn purge_events<E: Clone>(
    queue: &EventQueue<E>,
    keep: impl Fn(&E) -> bool,
) -> EventQueue<E> {
    let mut out = EventQueue::new();
    for (time, seq, ev) in queue.entries() {
        if keep(ev) {
            out.restore_entry(time, seq, ev.clone());
        }
    }
    out.set_next_seq(queue.next_seq());
    out
}

/// Inverse of [`queue_to_json`].
pub fn queue_from_json<E: FromJson>(v: &Json) -> Result<EventQueue<E>, JsonError> {
    let mut queue = EventQueue::new();
    for entry in v.field("entries")?.as_arr()? {
        let time = f64::from_json(entry.field("time")?)?;
        // Reject what `EventQueue::restore_entry` would assert on, so a
        // corrupt checkpoint surfaces as a typed error, not a panic.
        if !(time.is_finite() && time >= 0.0) {
            return Err(JsonError::schema(format!(
                "event time must be finite and non-negative, got {time}"
            )));
        }
        queue.restore_entry(
            time,
            u64::from_json(entry.field("seq")?)?,
            E::from_json(entry.field("event")?)?,
        );
    }
    queue.set_next_seq(u64::from_json(v.field("next_seq")?)?);
    Ok(queue)
}

/// The sessionized asynchronous gossip skeleton: dispatches workers in
/// completion-time order (one dispatch = one global step `k`), with
/// iteration times following the configured
/// [`ExecutionMode`](super::config::ExecutionMode).
pub struct GossipDriver<B: GossipBehavior> {
    behavior: B,
    name: String,
    queue: EventQueue<Ev>,
    /// Nominal per-node compute times (fixed batch size ⇒ fixed `C_i`);
    /// derived from the environment at start/restore.
    compute: Vec<f64>,
    /// The node whose next iteration must be scheduled before the next
    /// event pops — deferred so the peer-selection RNG draw happens after
    /// the session's stop check, like the classic loop.
    pending_next: Option<(usize, f64)>,
    started: bool,
}

impl<B: GossipBehavior> GossipDriver<B> {
    /// Wraps `behavior` as a session driver reporting under `name`.
    pub fn new(behavior: B, name: impl Into<String>) -> Self {
        Self {
            behavior,
            name: name.into(),
            queue: EventQueue::new(),
            compute: Vec::new(),
            pending_next: None,
            started: false,
        }
    }

    /// The wrapped behavior.
    pub fn behavior(&self) -> &B {
        &self.behavior
    }

    /// Starts node `i`'s next iteration: selects a peer at the node's
    /// current clock and schedules the completion event.
    fn schedule_next(&mut self, env: &mut Environment, i: usize, compute_s: f64) {
        let start = env.nodes[i].clock;
        let (peer, comm_s) = match self.behavior.select_peer(env, i) {
            PeerChoice::Peer(m) => {
                debug_assert!(
                    env.topology.is_edge(i, m),
                    "behavior selected non-neighbour {m} for node {i}"
                );
                (Some(m), env.comm_time(i, m, start))
            }
            PeerChoice::SelfStep => (None, 0.0),
        };
        let iteration_s = env.cfg.execution.iteration_time(compute_s, comm_s);
        self.queue.push(
            start + iteration_s,
            Ev::NodeDone { node: i, peer, compute_s, iteration_s },
        );
    }

    fn start(&mut self, env: &mut Environment) {
        self.started = true;
        self.behavior.on_start(env);
        self.compute = env.nominal_compute_times();
        for i in 0..env.num_nodes() {
            if !env.is_active(i) {
                continue;
            }
            let c = self.compute[i];
            self.schedule_next(env, i, c);
        }
        if let Some(ts) = self.behavior.monitor_period() {
            self.queue.push(ts, Ev::Monitor);
        }
    }
}

impl<B: GossipBehavior> SessionDriver for GossipDriver<B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn validate(&self, _env: &Environment) -> Result<(), SessionError> {
        if let Some(ts) = self.behavior.monitor_period() {
            if !(ts.is_finite() && ts > 0.0) {
                return Err(SessionError::InvalidConfig(format!(
                    "monitor period must be finite and positive, got {ts}"
                )));
            }
        }
        Ok(())
    }

    fn advance(&mut self, env: &mut Environment) -> DriverEvent {
        if !self.started {
            self.start(env);
        }
        if let Some((node, compute_s)) = self.pending_next.take() {
            if env.is_active(node) {
                self.schedule_next(env, node, compute_s);
            }
        }
        loop {
            return match self.queue.pop() {
                None => DriverEvent::Exhausted,
                // With the whole fleet down no worker events can advance
                // the clock; re-arming the monitor would tick forever
                // against a frozen simulation. Let the queue drain.
                Some((_, Ev::Monitor)) if env.num_active() == 0 => continue,
                Some((now, Ev::Monitor)) => {
                    self.behavior.on_monitor(env, now);
                    if let Some(ts) = self.behavior.monitor_period() {
                        self.queue.push(now + ts, Ev::Monitor);
                    }
                    DriverEvent::Monitor { time_s: now }
                }
                // Safety net only: `on_membership_change` eagerly purges
                // a crashed node's events (the load-bearing mechanism —
                // see `purge_events`), so a dead node's completion should
                // never reach this pop.
                Some((_, Ev::NodeDone { node, .. })) if !env.is_active(node) => continue,
                Some((_, Ev::NodeDone { node, peer, compute_s, iteration_s })) => {
                    // First update: local gradients (Algorithm 2 line 11).
                    let _ = env.gradient_step(node);
                    // Second update: merge the pulled model (lines 12–15).
                    // The pull buffer comes from the environment's pool so
                    // the steady-state step is allocation-free. A peer that
                    // crashed mid-pull delivers nothing — the time was
                    // already paid, the merge is skipped.
                    if let Some(m) = peer {
                        let mut pulled = env.take_param_buf();
                        if env.pull_params_into(m, &mut pulled).is_ok() {
                            self.behavior.merge(env, node, m, &pulled);
                        }
                        env.recycle_param_buf(pulled);
                    }
                    env.book_iteration(node, compute_s, iteration_s);
                    env.global_step += 1;
                    self.behavior.on_iteration(env, node, peer, iteration_s);
                    self.pending_next = Some((node, compute_s));
                    DriverEvent::Step { node, peer, iteration_s }
                }
            };
        }
    }

    fn on_membership_change(&mut self, env: &mut Environment, node: usize, active: bool) {
        self.behavior.on_membership_change(env, node, active);
        if !self.started {
            return;
        }
        if active {
            // Re-admit the rejoined node: its clock was advanced to the
            // rejoin time by the warm start, so its next iteration begins
            // there.
            let c = self.compute[node];
            self.schedule_next(env, node, c);
            // A full-fleet outage drains the monitor chain (its events
            // are dropped rather than re-armed against a frozen clock);
            // the first rejoin restarts it so the policy resumes
            // adapting.
            if let Some(ts) = self.behavior.monitor_period() {
                let armed = self
                    .queue
                    .entries()
                    .iter()
                    .any(|(_, _, ev)| matches!(ev, Ev::Monitor));
                if !armed {
                    self.queue.push(env.nodes[node].clock + ts, Ev::Monitor);
                }
            }
        } else {
            if matches!(self.pending_next, Some((n, _)) if n == node) {
                // The crashed node completed the last event but its next
                // iteration was never scheduled — drop it.
                self.pending_next = None;
            }
            // Purge the node's in-flight completion *now*: a lazy
            // active-flag check at pop time would mistake a stale
            // pre-crash event for a live one if the node rejoins first,
            // leaving the rejoined worker with two iteration chains.
            self.queue = purge_events(&self.queue, |ev| {
                !matches!(ev, Ev::NodeDone { node: n, .. } if *n == node)
            });
        }
    }

    fn checkpoint_state(&self) -> Json {
        Json::obj([
            ("started", self.started.to_json()),
            ("queue", queue_to_json(&self.queue)),
            (
                "pending_next",
                match self.pending_next {
                    Some((node, compute_s)) => Json::obj([
                        ("node", node.to_json()),
                        ("compute_s", compute_s.to_json()),
                    ]),
                    None => Json::Null,
                },
            ),
            ("behavior", self.behavior.checkpoint_state()),
        ])
    }

    fn restore_state(&mut self, env: &mut Environment, state: &Json) -> Result<(), JsonError> {
        let n = env.num_nodes();
        self.started = bool::from_json(state.field("started")?)?;
        if self.started {
            // Rebuild derived state the same way a fresh start would, then
            // let the behavior overwrite it from the checkpoint.
            self.behavior.on_start(env);
            self.compute = env.nominal_compute_times();
        }
        self.queue = queue_from_json(state.field("queue")?)?;
        for (_, _, ev) in self.queue.entries() {
            if let Ev::NodeDone { node, peer, .. } = ev {
                check_node_index(*node, n)?;
                if let Some(m) = peer {
                    check_node_index(*m, n)?;
                }
            }
        }
        self.pending_next = match state.field("pending_next")? {
            Json::Null => None,
            p => {
                let node = usize::from_json(p.field("node")?)?;
                check_node_index(node, n)?;
                Some((node, f64::from_json(p.field("compute_s")?)?))
            }
        };
        self.behavior.restore_state(env, state.field("behavior")?)?;
        Ok(())
    }
}

/// Runs an asynchronous gossip algorithm to completion and returns its
/// report — the blocking convenience over [`Session`] +
/// [`GossipDriver`].
///
/// # Panics
/// Panics if the behavior/config combination fails session validation
/// (use [`Session::new`] directly for a typed error).
pub fn run_gossip<B: GossipBehavior>(
    behavior: &mut B,
    env: &mut Environment,
    name: &str,
) -> RunReport {
    let driver = GossipDriver::new(behavior, name);
    let mut session = Session::new(env, Box::new(driver))
        .unwrap_or_else(|e| panic!("invalid gossip session: {e}"));
    session.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::config::TrainConfig;
    use crate::engine::session::StepEvent;
    use crate::engine::stop::StopCondition;
    use netmax_json::ToJson;
    use netmax_ml::partition::Partition;
    use netmax_ml::workload::Workload;
    use netmax_net::{HomogeneousNetwork, Topology};
    use rand::Rng;

    /// Minimal AD-PSGD-like behavior for driver tests: uniform neighbour,
    /// half-half averaging.
    struct UniformAveraging;

    impl GossipBehavior for UniformAveraging {
        fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice {
            let degree = env.topology.neighbors(i).len();
            let k = env.node_rng(i).gen_range(0..degree);
            PeerChoice::Peer(env.topology.neighbors(i)[k])
        }

        fn merge(&mut self, env: &mut Environment, i: usize, _m: usize, pulled: &[f32]) {
            netmax_ml::params::blend(0.5, env.nodes[i].model.params_mut(), pulled);
        }
    }

    fn env(seed: u64) -> Environment {
        let w = Workload::convex_ridge(5);
        let part = Partition::uniform(&w.train, 4, 1);
        let cfg = TrainConfig { seed, ..TrainConfig::quick_test() };
        Environment::new(
            Topology::fully_connected(4),
            Box::new(HomogeneousNetwork::paper_default(4)),
            w,
            part,
            cfg,
        )
    }

    #[test]
    fn driver_runs_to_epoch_target() {
        let mut e = env(11);
        let report = run_gossip(&mut UniformAveraging, &mut e, "uniform-avg");
        assert!(report.epochs_completed >= e.cfg.max_epochs);
        assert!(report.wall_clock_s > 0.0);
        assert!(report.global_steps > 0);
        assert!(!report.samples.is_empty());
    }

    #[test]
    fn training_loss_decreases() {
        let mut e = env(12);
        let report = run_gossip(&mut UniformAveraging, &mut e, "uniform-avg");
        let first = report.samples.first().unwrap().train_loss;
        let last = report.final_train_loss;
        assert!(
            last < first * 0.8,
            "gossip training failed to reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let r1 = run_gossip(&mut UniformAveraging, &mut env(13), "a");
        let r2 = run_gossip(&mut UniformAveraging, &mut env(13), "a");
        assert_eq!(r1.global_steps, r2.global_steps);
        assert_eq!(r1.wall_clock_s, r2.wall_clock_s);
        assert_eq!(r1.final_train_loss, r2.final_train_loss);
    }

    #[test]
    fn different_seeds_diverge() {
        // On a homogeneous network iteration *times* are seed-invariant by
        // construction; the optimisation trajectory is not.
        let r1 = run_gossip(&mut UniformAveraging, &mut env(1), "a");
        let r2 = run_gossip(&mut UniformAveraging, &mut env(2), "a");
        assert_ne!(r1.final_train_loss, r2.final_train_loss);
    }

    #[test]
    fn monitor_hook_fires_on_schedule() {
        struct Monitored {
            inner: UniformAveraging,
            fires: Vec<f64>,
        }
        impl GossipBehavior for Monitored {
            fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice {
                self.inner.select_peer(env, i)
            }
            fn merge(&mut self, env: &mut Environment, i: usize, m: usize, pulled: &[f32]) {
                self.inner.merge(env, i, m, pulled);
            }
            fn monitor_period(&self) -> Option<f64> {
                Some(0.5)
            }
            fn on_monitor(&mut self, _env: &mut Environment, now: f64) {
                self.fires.push(now);
            }
        }
        let mut b = Monitored { inner: UniformAveraging, fires: Vec::new() };
        let mut e = env(14);
        let report = run_gossip(&mut b, &mut e, "monitored");
        assert!(!b.fires.is_empty(), "monitor never fired");
        // Fires at 0.5, 1.0, 1.5, ... while the run lasted.
        for (k, t) in b.fires.iter().enumerate() {
            assert!((t - 0.5 * (k + 1) as f64).abs() < 1e-9);
        }
        assert!(*b.fires.last().unwrap() <= report.wall_clock_s + 0.5);
    }

    #[test]
    fn consensus_tightens_over_run() {
        let mut e = env(15);
        let report = run_gossip(&mut UniformAveraging, &mut e, "uniform-avg");
        let first = report.samples.first().unwrap().consensus_diameter;
        let last = report.samples.last().unwrap().consensus_diameter;
        assert!(
            last < first,
            "replica disagreement should shrink: {first} -> {last}"
        );
    }

    #[test]
    fn bad_monitor_period_is_a_typed_construction_error() {
        struct BadPeriod;
        impl GossipBehavior for BadPeriod {
            fn select_peer(&mut self, _env: &mut Environment, _i: usize) -> PeerChoice {
                PeerChoice::SelfStep
            }
            fn merge(&mut self, _env: &mut Environment, _i: usize, _m: usize, _p: &[f32]) {}
            fn monitor_period(&self) -> Option<f64> {
                Some(0.0)
            }
        }
        let mut e = env(16);
        let mut b = BadPeriod;
        let err = Session::new(&mut e, Box::new(GossipDriver::new(&mut b, "bad")))
            .err()
            .expect("zero monitor period must fail construction");
        assert!(matches!(err, SessionError::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("monitor period"), "{err}");
    }

    #[test]
    fn stepwise_session_matches_blocking_run() {
        let blocking = run_gossip(&mut UniformAveraging, &mut env(17), "uniform-avg");

        let mut e = env(17);
        let mut b = UniformAveraging;
        let mut session =
            Session::new(&mut e, Box::new(GossipDriver::new(&mut b, "uniform-avg"))).unwrap();
        let mut steps = 0u64;
        let mut samples = 0usize;
        let stepped = loop {
            match session.step() {
                StepEvent::GlobalStep { .. } => steps += 1,
                StepEvent::Sampled { .. } => samples += 1,
                StepEvent::Finished { report } => break report,
                _ => {}
            }
        };
        assert_eq!(steps, stepped.global_steps);
        // The finishing sample is not delivered as a `Sampled` event.
        assert_eq!(samples + 1, stepped.samples.len());
        assert_eq!(
            blocking.to_json().to_string(),
            stepped.to_json().to_string(),
            "step-wise execution must be byte-identical to the blocking loop"
        );
    }

    #[test]
    fn max_global_steps_stops_exactly() {
        let mut e = env(18);
        e.cfg.stop = Some(StopCondition::MaxGlobalSteps(37));
        let mut b = UniformAveraging;
        let mut session =
            Session::new(&mut e, Box::new(GossipDriver::new(&mut b, "uniform-avg"))).unwrap();
        let report = session.run();
        assert_eq!(report.global_steps, 37);
    }

    #[test]
    fn expired_deadline_finishes_without_another_driver_advance() {
        let mut e = env(21);
        let mut b = UniformAveraging;
        let mut session =
            Session::new(&mut e, Box::new(GossipDriver::new(&mut b, "uniform-avg"))).unwrap();
        let mut steps = 0;
        while steps < 10 {
            if let StepEvent::GlobalStep { .. } = session.step() {
                steps += 1;
            }
        }
        session.set_deadline(std::time::Instant::now());
        let before = session.env().global_step;
        // The overshoot past an expired deadline is bounded at zero driver
        // advances: the very next step finishes with a truthful partial
        // report.
        match session.step() {
            StepEvent::Finished { report } => assert_eq!(report.global_steps, before),
            other => panic!("expected immediate finish, got {other:?}"),
        }
        assert_eq!(session.env().global_step, before, "driver advanced past the deadline");
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_mid_run() {
        let full = run_gossip(&mut UniformAveraging, &mut env(19), "uniform-avg");

        // Run 25 global steps, checkpoint, resume in a fresh session.
        let mut e = env(19);
        let mut b = UniformAveraging;
        let mut session =
            Session::new(&mut e, Box::new(GossipDriver::new(&mut b, "uniform-avg"))).unwrap();
        let mut steps = 0;
        while steps < 25 {
            if let StepEvent::GlobalStep { .. } = session.step() {
                steps += 1;
            }
        }
        let ckpt = session.checkpoint();
        let text = ckpt.pretty();
        drop(session);

        let mut e2 = env(19);
        let mut b2 = UniformAveraging;
        let mut resumed = Session::restore(
            &mut e2,
            Box::new(GossipDriver::new(&mut b2, "uniform-avg")),
            &netmax_json::Json::parse(&text).unwrap(),
        )
        .unwrap();
        let report = resumed.run();
        assert_eq!(
            report.to_json().to_string(),
            full.to_json().to_string(),
            "checkpoint-at-k + resume must equal the uninterrupted run"
        );
    }
}
