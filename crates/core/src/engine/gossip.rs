//! The asynchronous gossip driver.
//!
//! NetMax, AD-PSGD, and GoSGD share the same execution skeleton (§III-B):
//! every worker loops { pick a peer, pull its model while computing local
//! gradients, apply the two-step update }, entirely asynchronously. The
//! driver implements that skeleton once over the virtual clock; the three
//! algorithms differ only in *how peers are selected* and *how pulled
//! parameters are merged* — the two methods of [`GossipBehavior`].
//!
//! Staleness is modelled faithfully: the parameters a worker merges are
//! whatever its peer holds at the *completion* time of the pull, exactly
//! like the freshest-parameter semantics of Algorithm 2 line 10/12.

use super::environment::Environment;
use super::recorder::{Recorder, RunReport};
use netmax_net::EventQueue;

/// A worker's choice at the start of an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerChoice {
    /// Pull from neighbour `m` this iteration.
    Peer(usize),
    /// Self-selection (`p_{i,i}`): a gradient-only iteration with no
    /// communication.
    SelfStep,
}

/// Algorithm-specific hooks plugged into the gossip driver.
pub trait GossipBehavior {
    /// Chooses the peer node `i` communicates with this iteration
    /// (Algorithm 2 line 9).
    fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice;

    /// Merges the pulled parameters into node `i`'s replica
    /// (Algorithm 2 lines 13–15 for NetMax; plain averaging for AD-PSGD).
    fn merge(&mut self, env: &mut Environment, i: usize, m: usize, pulled: &[f32]);

    /// Called after node `i` completes an iteration, with the realised
    /// iteration time (drives the EMA of Algorithm 2 line 16).
    fn on_iteration(&mut self, _env: &Environment, _i: usize, _peer: Option<usize>, _t: f64) {}

    /// If `Some(Ts)`, a Network-Monitor event fires every `Ts` simulated
    /// seconds (Algorithm 1's collection period).
    fn monitor_period(&self) -> Option<f64> {
        None
    }

    /// Handles a Network-Monitor firing (collect times, regenerate and
    /// disseminate the policy).
    fn on_monitor(&mut self, _env: &mut Environment, _now: f64) {}
}

enum Ev {
    NodeDone { node: usize, peer: Option<usize>, compute_s: f64, iteration_s: f64 },
    Monitor,
}

/// Runs an asynchronous gossip algorithm to completion and returns its
/// report.
///
/// Workers are dispatched in completion-time order (one dispatch = one
/// global step `k`); iteration times follow the configured
/// [`ExecutionMode`](super::config::ExecutionMode).
pub fn run_gossip<B: GossipBehavior>(
    behavior: &mut B,
    env: &mut Environment,
    name: &str,
) -> RunReport {
    let n = env.num_nodes();
    let mut rec = Recorder::new();
    let mut queue: EventQueue<Ev> = EventQueue::new();

    // Nominal per-node compute times (fixed batch size ⇒ fixed C_i).
    let compute: Vec<f64> = (0..n)
        .map(|i| {
            let b = env.partition.batch_size(i, env.workload.batch_size);
            env.workload.profile.compute_time(b)
        })
        .collect();

    // Kick off the first iteration of every node.
    for (i, &c) in compute.iter().enumerate() {
        schedule_next(behavior, env, &mut queue, i, c);
    }
    if let Some(ts) = behavior.monitor_period() {
        assert!(ts > 0.0, "monitor period must be positive");
        queue.push(ts, Ev::Monitor);
    }

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Monitor => {
                behavior.on_monitor(env, now);
                if let Some(ts) = behavior.monitor_period() {
                    queue.push(now + ts, Ev::Monitor);
                }
            }
            Ev::NodeDone { node, peer, compute_s, iteration_s } => {
                // First update: local gradients (Algorithm 2 line 11).
                let _ = env.gradient_step(node);
                // Second update: merge the pulled model (lines 12–15).
                if let Some(m) = peer {
                    let pulled = env.pull_params(m);
                    behavior.merge(env, node, m, &pulled);
                }
                env.book_iteration(node, compute_s, iteration_s);
                env.global_step += 1;
                behavior.on_iteration(env, node, peer, iteration_s);
                rec.maybe_record(env);

                if env.should_stop() {
                    break;
                }
                schedule_next(behavior, env, &mut queue, node, compute_s);
            }
        }
    }

    rec.finish(env, name)
}

/// Starts node `i`'s next iteration: selects a peer at the node's current
/// clock and schedules the completion event.
fn schedule_next<B: GossipBehavior>(
    behavior: &mut B,
    env: &mut Environment,
    queue: &mut EventQueue<Ev>,
    i: usize,
    compute_s: f64,
) {
    let start = env.nodes[i].clock;
    let (peer, comm_s) = match behavior.select_peer(env, i) {
        PeerChoice::Peer(m) => {
            debug_assert!(
                env.topology.is_edge(i, m),
                "behavior selected non-neighbour {m} for node {i}"
            );
            (Some(m), env.comm_time(i, m, start))
        }
        PeerChoice::SelfStep => (None, 0.0),
    };
    let iteration_s = env.cfg.execution.iteration_time(compute_s, comm_s);
    queue.push(
        start + iteration_s,
        Ev::NodeDone { node: i, peer, compute_s, iteration_s },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::config::TrainConfig;
    use netmax_ml::partition::Partition;
    use netmax_ml::workload::Workload;
    use netmax_net::{HomogeneousNetwork, Topology};
    use rand::Rng;

    /// Minimal AD-PSGD-like behavior for driver tests: uniform neighbour,
    /// half-half averaging.
    struct UniformAveraging;

    impl GossipBehavior for UniformAveraging {
        fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice {
            let nbrs = env.topology.neighbors(i);
            let k = env.node_rng(i).gen_range(0..nbrs.len());
            PeerChoice::Peer(nbrs[k])
        }

        fn merge(&mut self, env: &mut Environment, i: usize, _m: usize, pulled: &[f32]) {
            netmax_ml::params::blend(0.5, env.nodes[i].model.params_mut(), pulled);
        }
    }

    fn env(seed: u64) -> Environment {
        let w = Workload::convex_ridge(5);
        let part = Partition::uniform(&w.train, 4, 1);
        let cfg = TrainConfig { seed, ..TrainConfig::quick_test() };
        Environment::new(
            Topology::fully_connected(4),
            Box::new(HomogeneousNetwork::paper_default(4)),
            w,
            part,
            cfg,
        )
    }

    #[test]
    fn driver_runs_to_epoch_target() {
        let mut e = env(11);
        let report = run_gossip(&mut UniformAveraging, &mut e, "uniform-avg");
        assert!(report.epochs_completed >= e.cfg.max_epochs);
        assert!(report.wall_clock_s > 0.0);
        assert!(report.global_steps > 0);
        assert!(!report.samples.is_empty());
    }

    #[test]
    fn training_loss_decreases() {
        let mut e = env(12);
        let report = run_gossip(&mut UniformAveraging, &mut e, "uniform-avg");
        let first = report.samples.first().unwrap().train_loss;
        let last = report.final_train_loss;
        assert!(
            last < first * 0.8,
            "gossip training failed to reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let r1 = run_gossip(&mut UniformAveraging, &mut env(13), "a");
        let r2 = run_gossip(&mut UniformAveraging, &mut env(13), "a");
        assert_eq!(r1.global_steps, r2.global_steps);
        assert_eq!(r1.wall_clock_s, r2.wall_clock_s);
        assert_eq!(r1.final_train_loss, r2.final_train_loss);
    }

    #[test]
    fn different_seeds_diverge() {
        // On a homogeneous network iteration *times* are seed-invariant by
        // construction; the optimisation trajectory is not.
        let r1 = run_gossip(&mut UniformAveraging, &mut env(1), "a");
        let r2 = run_gossip(&mut UniformAveraging, &mut env(2), "a");
        assert_ne!(r1.final_train_loss, r2.final_train_loss);
    }

    #[test]
    fn monitor_hook_fires_on_schedule() {
        struct Monitored {
            inner: UniformAveraging,
            fires: Vec<f64>,
        }
        impl GossipBehavior for Monitored {
            fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice {
                self.inner.select_peer(env, i)
            }
            fn merge(&mut self, env: &mut Environment, i: usize, m: usize, pulled: &[f32]) {
                self.inner.merge(env, i, m, pulled);
            }
            fn monitor_period(&self) -> Option<f64> {
                Some(0.5)
            }
            fn on_monitor(&mut self, _env: &mut Environment, now: f64) {
                self.fires.push(now);
            }
        }
        let mut b = Monitored { inner: UniformAveraging, fires: Vec::new() };
        let mut e = env(14);
        let report = run_gossip(&mut b, &mut e, "monitored");
        assert!(!b.fires.is_empty(), "monitor never fired");
        // Fires at 0.5, 1.0, 1.5, ... while the run lasted.
        for (k, t) in b.fires.iter().enumerate() {
            assert!((t - 0.5 * (k + 1) as f64).abs() < 1e-9);
        }
        assert!(*b.fires.last().unwrap() <= report.wall_clock_s + 0.5);
    }

    #[test]
    fn consensus_tightens_over_run() {
        let mut e = env(15);
        let report = run_gossip(&mut UniformAveraging, &mut e, "uniform-avg");
        let first = report.samples.first().unwrap().consensus_diameter;
        let last = report.samples.last().unwrap().consensus_diameter;
        assert!(
            last < first,
            "replica disagreement should shrink: {first} -> {last}"
        );
    }
}
