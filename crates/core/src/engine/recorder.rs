//! Metric recording and the final run report.

use super::environment::Environment;
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_ml::metrics;
use serde::{Deserialize, Serialize};

/// One recorded point of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// Simulated wall-clock seconds.
    pub time_s: f64,
    /// Global step `k` at which the sample was taken.
    pub global_step: u64,
    /// Mean fractional epoch across nodes.
    pub epoch: f64,
    /// Mean (subsampled) training loss across replicas.
    pub train_loss: f64,
    /// Maximum pairwise replica parameter distance.
    pub consensus_diameter: f64,
    /// Test accuracy of the replica-averaged model, when evaluated.
    pub test_accuracy: Option<f64>,
}

/// Per-node cost accounting of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeCost {
    /// The node's final virtual clock (s).
    pub clock_s: f64,
    /// Epochs the node completed over its own shard.
    pub epochs: f64,
    /// Total gradient-compute seconds.
    pub comp_s: f64,
    /// Total exposed-communication seconds.
    pub comm_s: f64,
}

/// Full record of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Algorithm identifier.
    pub algorithm: String,
    /// Workload name.
    pub workload: String,
    /// Number of worker nodes.
    pub num_nodes: usize,
    /// Time series of recorded samples.
    pub samples: Vec<Sample>,
    /// Final simulated wall-clock seconds.
    pub wall_clock_s: f64,
    /// Mean epochs completed.
    pub epochs_completed: f64,
    /// Total global steps executed.
    pub global_steps: u64,
    /// Final training loss (last sample).
    pub final_train_loss: f64,
    /// Final test accuracy of the replica-averaged model.
    pub final_test_accuracy: f64,
    /// Per-node clocks, epochs, and cost totals.
    pub per_node: Vec<NodeCost>,
}

impl RunReport {
    /// Average epoch wall time — the Fig. 5/6 bar height, computed the
    /// way a real deployment logs it: each node's own time-per-epoch,
    /// averaged across nodes. Nodes stuck on slow links are charged their
    /// long epochs (a fleet-mean-epoch denominator would hide laggards).
    pub fn epoch_time_avg_s(&self) -> f64 {
        mean(self.per_node.iter().map(|n| safe_div(n.clock_s, n.epochs)))
    }

    /// Computation share of the average epoch time (Fig. 5/6 lower bar).
    pub fn comp_cost_per_epoch_s(&self) -> f64 {
        mean(self.per_node.iter().map(|n| safe_div(n.comp_s, n.epochs)))
    }

    /// Communication share of the average epoch time (Fig. 5/6 upper bar).
    pub fn comm_cost_per_epoch_s(&self) -> f64 {
        mean(self.per_node.iter().map(|n| safe_div(n.comm_s, n.epochs)))
    }

    /// Mean over nodes of total gradient-compute seconds.
    pub fn comp_time_total_s(&self) -> f64 {
        mean(self.per_node.iter().map(|n| n.comp_s))
    }

    /// Mean over nodes of total exposed-communication seconds.
    pub fn comm_time_total_s(&self) -> f64 {
        mean(self.per_node.iter().map(|n| n.comm_s))
    }

    /// Slowest node's epoch count — the straggler view of progress.
    pub fn min_node_epochs(&self) -> f64 {
        self.per_node.iter().map(|n| n.epochs).fold(f64::INFINITY, f64::min)
    }

    /// Simulated seconds to reach `loss` (first sample at or below it), if
    /// ever reached — the paper's convergence-speedup measure.
    pub fn time_to_loss(&self, loss: f64) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.train_loss <= loss)
            .map(|s| s.time_s)
    }

    /// Mean epochs to reach `loss`, if ever reached.
    pub fn epochs_to_loss(&self, loss: f64) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.train_loss <= loss)
            .map(|s| s.epoch)
    }
}

impl ToJson for Sample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("time_s", self.time_s.to_json()),
            ("global_step", self.global_step.to_json()),
            ("epoch", self.epoch.to_json()),
            ("train_loss", self.train_loss.to_json()),
            ("consensus_diameter", self.consensus_diameter.to_json()),
            ("test_accuracy", self.test_accuracy.to_json()),
        ])
    }
}

impl FromJson for Sample {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            time_s: f64::from_json(v.field("time_s")?)?,
            global_step: u64::from_json(v.field("global_step")?)?,
            epoch: f64::from_json(v.field("epoch")?)?,
            train_loss: f64::from_json(v.field("train_loss")?)?,
            consensus_diameter: f64::from_json(v.field("consensus_diameter")?)?,
            test_accuracy: Option::from_json(v.field("test_accuracy")?)?,
        })
    }
}

impl ToJson for NodeCost {
    fn to_json(&self) -> Json {
        Json::obj([
            ("clock_s", self.clock_s.to_json()),
            ("epochs", self.epochs.to_json()),
            ("comp_s", self.comp_s.to_json()),
            ("comm_s", self.comm_s.to_json()),
        ])
    }
}

impl FromJson for NodeCost {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            clock_s: f64::from_json(v.field("clock_s")?)?,
            epochs: f64::from_json(v.field("epochs")?)?,
            comp_s: f64::from_json(v.field("comp_s")?)?,
            comm_s: f64::from_json(v.field("comm_s")?)?,
        })
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("algorithm", self.algorithm.to_json()),
            ("workload", self.workload.to_json()),
            ("num_nodes", self.num_nodes.to_json()),
            ("wall_clock_s", self.wall_clock_s.to_json()),
            ("epochs_completed", self.epochs_completed.to_json()),
            ("global_steps", self.global_steps.to_json()),
            ("final_train_loss", self.final_train_loss.to_json()),
            ("final_test_accuracy", self.final_test_accuracy.to_json()),
            ("per_node", self.per_node.to_json()),
            ("samples", self.samples.to_json()),
        ])
    }
}

impl FromJson for RunReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            algorithm: String::from_json(v.field("algorithm")?)?,
            workload: String::from_json(v.field("workload")?)?,
            num_nodes: usize::from_json(v.field("num_nodes")?)?,
            wall_clock_s: f64::from_json(v.field("wall_clock_s")?)?,
            epochs_completed: f64::from_json(v.field("epochs_completed")?)?,
            global_steps: u64::from_json(v.field("global_steps")?)?,
            final_train_loss: f64::from_json(v.field("final_train_loss")?)?,
            final_test_accuracy: f64::from_json(v.field("final_test_accuracy")?)?,
            per_node: Vec::from_json(v.field("per_node")?)?,
            samples: Vec::from_json(v.field("samples")?)?,
        })
    }
}

/// Collects samples during a run and assembles the [`RunReport`].
pub struct Recorder {
    samples: Vec<Sample>,
    records_taken: usize,
    last_recorded_step: u64,
    /// Reusable evaluation workspace — loss curves are sampled thousands
    /// of times per run, so the recorder evaluates through the models'
    /// scratch kernels (bitwise identical to the plain metric functions).
    /// Transient; never checkpointed.
    eval: netmax_ml::model::Scratch,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            records_taken: 0,
            last_recorded_step: 0,
            eval: netmax_ml::model::Scratch::new(),
        }
    }

    /// `true` when the configured cadence calls for a sample at the
    /// current global step.
    pub fn due(&self, env: &Environment) -> bool {
        env.global_step == 1
            || env.global_step - self.last_recorded_step >= env.cfg.record_every_steps
    }

    /// Records a sample if the configured cadence says so; call after
    /// every global step.
    pub fn maybe_record(&mut self, env: &Environment) {
        if self.due(env) {
            self.force_record(env);
        }
    }

    /// Records a sample unconditionally and returns it (the session's
    /// `Sampled` event payload).
    pub fn record_now(&mut self, env: &Environment) -> Sample {
        self.force_record(env)
    }

    /// Records a sample unconditionally. Replicas are evaluated in place
    /// (no cloning) through the recorder's scratch workspace; every
    /// recorded value is bitwise identical to the plain
    /// `mean_loss_across_replicas`/`consensus_diameter`/`accuracy` path.
    pub fn force_record(&mut self, env: &Environment) -> Sample {
        self.last_recorded_step = env.global_step;
        // Metrics are computed over the *live* fleet: a crashed node's
        // frozen replica is not part of the model being trained (with
        // everyone active this is exactly the historic all-nodes path).
        // Should every worker be down, the frozen replicas are the only
        // honest readout — an empty filter would report loss 0.0, a
        // perfect score for a fleet that entirely crashed.
        let any_active = env.num_active() > 0;
        let alive = |i: usize| !any_active || env.is_active(i);
        let counted = if any_active { env.num_active() } else { env.num_nodes() };
        let train_loss = env
            .nodes
            .iter()
            .enumerate()
            .filter(|&(i, _)| alive(i))
            .map(|(_, n)| {
                metrics::subsampled_loss_scratch(
                    n.model.as_ref(),
                    &env.workload.train,
                    env.cfg.loss_sample_size,
                    &mut self.eval,
                )
            })
            .sum::<f64>()
            / counted as f64;
        let params: Vec<&[f32]> = env
            .nodes
            .iter()
            .enumerate()
            .filter(|&(i, _)| alive(i))
            .map(|(_, n)| n.model.params())
            .collect();
        let consensus = metrics::consensus_diameter_params(&params);
        let test_accuracy = if self.records_taken.is_multiple_of(env.cfg.test_eval_every_records) {
            Some(evaluate_averaged(env, &mut self.eval))
        } else {
            None
        };
        self.records_taken += 1;
        let sample = Sample {
            time_s: env.wall_clock(),
            global_step: env.global_step,
            epoch: env.mean_epoch(),
            train_loss,
            consensus_diameter: consensus,
            test_accuracy,
        };
        self.samples.push(sample.clone());
        sample
    }

    /// Serializes the recorder's state (samples taken so far and cadence
    /// counters) for checkpoint/resume.
    pub fn checkpoint(&self) -> Json {
        Json::obj([
            ("samples", self.samples.to_json()),
            ("records_taken", self.records_taken.to_json()),
            ("last_recorded_step", self.last_recorded_step.to_json()),
        ])
    }

    /// Restores state captured by [`Recorder::checkpoint`] in place.
    pub fn restore(&mut self, state: &Json) -> Result<(), JsonError> {
        self.samples = Vec::from_json(state.field("samples")?)?;
        self.records_taken = usize::from_json(state.field("records_taken")?)?;
        self.last_recorded_step = u64::from_json(state.field("last_recorded_step")?)?;
        Ok(())
    }

    /// Finalises the report (records one last sample with test accuracy).
    pub fn finish(&mut self, env: &Environment, algorithm: &str) -> RunReport {
        // Always end with a fully evaluated sample.
        self.records_taken = 0; // forces test eval below
        self.force_record(env);
        let final_acc = self
            .samples
            .last()
            .and_then(|s| s.test_accuracy)
            .unwrap_or_default();
        let final_loss = self.samples.last().map(|s| s.train_loss).unwrap_or(f64::NAN);
        let per_node = env
            .nodes
            .iter()
            .map(|x| NodeCost {
                clock_s: x.clock,
                epochs: x.epochs(),
                comp_s: x.comp_time_total,
                comm_s: x.comm_exposed_total,
            })
            .collect();
        RunReport {
            algorithm: algorithm.to_string(),
            workload: env.workload.name.clone(),
            num_nodes: env.num_nodes(),
            wall_clock_s: env.wall_clock(),
            epochs_completed: env.mean_epoch(),
            global_steps: env.global_step,
            final_train_loss: final_loss,
            final_test_accuracy: final_acc,
            per_node,
            samples: self.samples.clone(),
        }
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for x in it {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn safe_div(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        0.0
    }
}

/// Test accuracy of the parameter-averaged model — the paper evaluates
/// "the trained model"; at consensus all replicas agree, and averaging is
/// the standard readout. Only live replicas enter the average (with
/// everyone active this is the historic all-nodes mean).
fn evaluate_averaged(env: &Environment, scratch: &mut netmax_ml::model::Scratch) -> f64 {
    let mut avg = env.nodes[0].model.clone_box();
    let any_active = env.num_active() > 0;
    let n = if any_active { env.num_active() } else { env.num_nodes() } as f32;
    let dim = avg.num_params();
    let mut acc = vec![0.0f32; dim];
    for (i, node) in env.nodes.iter().enumerate() {
        if any_active && !env.is_active(i) {
            continue;
        }
        for (a, p) in acc.iter_mut().zip(node.model.params()) {
            *a += p / n;
        }
    }
    avg.params_mut().copy_from_slice(&acc);
    metrics::accuracy_scratch(avg.as_ref(), &env.workload.test, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::config::TrainConfig;
    use netmax_ml::partition::Partition;
    use netmax_ml::workload::Workload;
    use netmax_net::{HomogeneousNetwork, Topology};

    fn env() -> Environment {
        let w = Workload::convex_ridge(3);
        let part = Partition::uniform(&w.train, 3, 0);
        Environment::new(
            Topology::fully_connected(3),
            Box::new(HomogeneousNetwork::paper_default(3)),
            w,
            part,
            TrainConfig::quick_test(),
        )
    }

    #[test]
    fn records_on_cadence() {
        let mut e = env();
        let mut rec = Recorder::new();
        for step in 1..=45u64 {
            e.global_step = step;
            rec.maybe_record(&e);
        }
        // Step 1 and steps 21, 41 (cadence 20).
        assert_eq!(rec.samples.len(), 3);
    }

    #[test]
    fn finish_produces_complete_report() {
        let mut e = env();
        e.global_step = 1;
        e.book_iteration(0, 0.1, 0.3);
        let mut rec = Recorder::new();
        let report = rec.finish(&e, "test-algo");
        assert_eq!(report.algorithm, "test-algo");
        assert_eq!(report.num_nodes, 3);
        assert_eq!(report.samples.len(), 1);
        assert!(report.final_test_accuracy >= 0.0);
        assert!(report.final_train_loss.is_finite());
        assert!(report.comp_time_total_s() > 0.0);
    }

    #[test]
    fn epoch_time_breakdown_adds_up() {
        let r = RunReport {
            algorithm: "x".into(),
            workload: "w".into(),
            num_nodes: 2,
            samples: vec![],
            wall_clock_s: 100.0,
            epochs_completed: 10.0,
            global_steps: 1000,
            final_train_loss: 0.1,
            final_test_accuracy: 0.9,
            per_node: vec![
                NodeCost { clock_s: 100.0, epochs: 10.0, comp_s: 40.0, comm_s: 60.0 },
                NodeCost { clock_s: 100.0, epochs: 5.0, comp_s: 40.0, comm_s: 60.0 },
            ],
        };
        // Node 1: 10 s/epoch; node 2: 20 s/epoch; per-node average 15.
        assert!((r.epoch_time_avg_s() - 15.0).abs() < 1e-12);
        assert!((r.comp_cost_per_epoch_s() - 6.0).abs() < 1e-12);
        assert!((r.comm_cost_per_epoch_s() - 9.0).abs() < 1e-12);
        assert_eq!(r.min_node_epochs(), 5.0);
    }

    #[test]
    fn run_report_json_round_trip() {
        let report = RunReport {
            algorithm: "netmax".into(),
            workload: "resnet18/cifar10".into(),
            num_nodes: 2,
            samples: vec![Sample {
                time_s: 1.5,
                global_step: 40,
                epoch: 0.25,
                train_loss: 2.0,
                consensus_diameter: 0.125,
                test_accuracy: None,
            }],
            wall_clock_s: 10.0,
            epochs_completed: 1.0,
            global_steps: 100,
            final_train_loss: 0.5,
            final_test_accuracy: 0.875,
            per_node: vec![NodeCost { clock_s: 10.0, epochs: 1.0, comp_s: 4.0, comm_s: 6.0 }],
        };
        let text = report.to_json().pretty();
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.algorithm, report.algorithm);
        assert_eq!(back.samples.len(), 1);
        assert_eq!(back.samples[0].test_accuracy, None);
        assert_eq!(back.samples[0].train_loss, 2.0);
        assert_eq!(back.per_node[0].comm_s, 6.0);
        assert_eq!(back.global_steps, 100);
        // And a NaN loss survives as null → NaN.
        let mut nan_report = report;
        nan_report.final_train_loss = f64::NAN;
        let back =
            RunReport::from_json(&Json::parse(&nan_report.to_json().to_string()).unwrap()).unwrap();
        assert!(back.final_train_loss.is_nan());
    }

    #[test]
    fn time_to_loss_lookup() {
        let mk = |t: f64, l: f64| Sample {
            time_s: t,
            global_step: 0,
            epoch: 0.0,
            train_loss: l,
            consensus_diameter: 0.0,
            test_accuracy: None,
        };
        let r = RunReport {
            algorithm: "x".into(),
            workload: "w".into(),
            num_nodes: 1,
            samples: vec![mk(1.0, 2.0), mk(2.0, 1.0), mk(3.0, 0.5)],
            wall_clock_s: 3.0,
            epochs_completed: 1.0,
            global_steps: 3,
            final_train_loss: 0.5,
            final_test_accuracy: 0.0,
            per_node: vec![],
        };
        assert_eq!(r.time_to_loss(1.0), Some(2.0));
        assert_eq!(r.time_to_loss(0.1), None);
    }
}
