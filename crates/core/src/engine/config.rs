//! Run-level engine configuration.

use super::session::SessionError;
use super::stop::StopCondition;
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_ml::NumericsTier;
use serde::{Deserialize, Serialize};

/// Whether gradient computation and parameter communication overlap.
///
/// Algorithm 2 issues the pull request *before* computing gradients so the
/// two run concurrently and the iteration time is `max(C_i, N_{i,m})`
/// (§II-B). The serial mode (`C_i + N_{i,m}`) exists for the Fig. 7
/// ablation, which quantifies how much that overlap buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Overlapped compute/communication: `t = max(C, N)` (NetMax default).
    Parallel,
    /// Sequential compute then communication: `t = C + N`.
    Serial,
}

impl ExecutionMode {
    /// Iteration time for compute time `c` and communication time `n`.
    #[inline]
    pub fn iteration_time(self, c: f64, n: f64) -> f64 {
        match self {
            ExecutionMode::Parallel => c.max(n),
            ExecutionMode::Serial => c + n,
        }
    }
}

impl ExecutionMode {
    /// Stable JSON identifier.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionMode::Parallel => "parallel",
            ExecutionMode::Serial => "serial",
        }
    }
}

impl ToJson for ExecutionMode {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for ExecutionMode {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "parallel" => Ok(ExecutionMode::Parallel),
            "serial" => Ok(ExecutionMode::Serial),
            other => Err(JsonError::schema(format!("unknown execution mode `{other}`"))),
        }
    }
}

/// Stop conditions and recording cadence for one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Stop when the mean per-node epoch count reaches this.
    pub max_epochs: f64,
    /// Hard stop on simulated wall-clock seconds (safety net; generous).
    pub max_wall_clock_s: f64,
    /// Record a metric sample every this many global steps.
    pub record_every_steps: u64,
    /// Examples used for the subsampled training-loss estimate.
    pub loss_sample_size: usize,
    /// Evaluate test accuracy every this many recorded samples
    /// (test evaluation is the most expensive part of recording).
    pub test_eval_every_records: usize,
    /// Compute/communication overlap mode.
    pub execution: ExecutionMode,
    /// Master seed; node init seeds, batch order, and peer selection all
    /// derive from it deterministically.
    pub seed: u64,
    /// Optional declarative stop condition. When set it *replaces* the
    /// `max_epochs` criterion (the `max_wall_clock_s` safety net always
    /// applies on top) — see [`TrainConfig::effective_stop`].
    pub stop: Option<StopCondition>,
    /// Numerics tier the gradient hot path runs under. `Strict` (the
    /// default) is bit-stable against the committed baselines; `Fast`
    /// opts in to the reassociated kernel family. The tier is recorded in
    /// checkpoints so a resume can never silently cross tiers.
    pub tier: NumericsTier,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            max_epochs: 10.0,
            max_wall_clock_s: 1e7,
            record_every_steps: 50,
            loss_sample_size: 512,
            test_eval_every_records: 5,
            execution: ExecutionMode::Parallel,
            seed: 42,
            stop: None,
            tier: NumericsTier::Strict,
        }
    }
}

impl ToJson for TrainConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("max_epochs", self.max_epochs.to_json()),
            ("max_wall_clock_s", self.max_wall_clock_s.to_json()),
            ("record_every_steps", self.record_every_steps.to_json()),
            ("loss_sample_size", self.loss_sample_size.to_json()),
            ("test_eval_every_records", self.test_eval_every_records.to_json()),
            ("execution", self.execution.to_json()),
            ("seed", self.seed.to_json()),
            ("stop", self.stop.to_json()),
            ("tier", self.tier.to_json()),
        ])
    }
}

impl FromJson for TrainConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            max_epochs: f64::from_json(v.field("max_epochs")?)?,
            max_wall_clock_s: f64::from_json(v.field("max_wall_clock_s")?)?,
            record_every_steps: u64::from_json(v.field("record_every_steps")?)?,
            loss_sample_size: usize::from_json(v.field("loss_sample_size")?)?,
            test_eval_every_records: usize::from_json(v.field("test_eval_every_records")?)?,
            execution: ExecutionMode::from_json(v.field("execution")?)?,
            seed: u64::from_json(v.field("seed")?)?,
            // Absent in pre-session documents; tolerate for compatibility.
            stop: match v.get("stop") {
                None | Some(Json::Null) => None,
                Some(s) => Some(StopCondition::from_json(s)?),
            },
            // Absent in pre-tier documents; they were all strict.
            tier: match v.get("tier") {
                None | Some(Json::Null) => NumericsTier::Strict,
                Some(t) => NumericsTier::from_json(t)?,
            },
        })
    }
}

impl TrainConfig {
    /// Config scaled for fast unit/integration tests.
    pub fn quick_test() -> Self {
        Self {
            max_epochs: 2.0,
            record_every_steps: 20,
            loss_sample_size: 128,
            ..Self::default()
        }
    }

    /// The stop condition a [`Session`](super::session::Session) runs
    /// under: the explicit [`TrainConfig::stop`] when set (otherwise the
    /// classic `max_epochs` criterion), always composed with the
    /// `max_wall_clock_s` simulated-time safety net so no condition — e.g.
    /// an unreachable loss target — can run a session forever.
    pub fn effective_stop(&self) -> StopCondition {
        let primary = match &self.stop {
            Some(s) => s.clone(),
            None => StopCondition::MaxEpochs(self.max_epochs),
        };
        StopCondition::Any(vec![primary, StopCondition::MaxSimSeconds(self.max_wall_clock_s)])
    }

    /// Validates the configuration, surfacing problems as typed errors at
    /// session construction instead of mid-run panics.
    pub fn validate(&self) -> Result<(), SessionError> {
        let bad = |msg: String| Err(SessionError::InvalidConfig(msg));
        if !(self.max_epochs.is_finite() && self.max_epochs > 0.0) {
            return bad(format!("max_epochs must be finite and positive, got {}", self.max_epochs));
        }
        if !(self.max_wall_clock_s.is_finite() && self.max_wall_clock_s > 0.0) {
            return bad(format!(
                "max_wall_clock_s must be finite and positive, got {}",
                self.max_wall_clock_s
            ));
        }
        if self.record_every_steps == 0 {
            return bad("record_every_steps must be positive".into());
        }
        if self.loss_sample_size == 0 {
            return bad("loss_sample_size must be positive".into());
        }
        if self.test_eval_every_records == 0 {
            return bad("test_eval_every_records must be positive".into());
        }
        if let Some(stop) = &self.stop {
            stop.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_time_modes() {
        assert_eq!(ExecutionMode::Parallel.iteration_time(0.2, 0.5), 0.5);
        assert_eq!(ExecutionMode::Parallel.iteration_time(0.7, 0.5), 0.7);
        assert_eq!(ExecutionMode::Serial.iteration_time(0.2, 0.5), 0.7);
    }

    #[test]
    fn defaults_sane() {
        let c = TrainConfig::default();
        assert!(c.max_epochs > 0.0);
        assert!(c.record_every_steps > 0);
        assert_eq!(c.execution, ExecutionMode::Parallel);
    }

    #[test]
    fn train_config_json_round_trip() {
        let cfg = TrainConfig {
            execution: ExecutionMode::Serial,
            seed: u64::MAX,
            stop: Some(StopCondition::All(vec![
                StopCondition::MaxGlobalSteps(500),
                StopCondition::LossBelow(0.3),
            ])),
            ..TrainConfig::quick_test()
        };
        let back = TrainConfig::from_json(&Json::parse(&cfg.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, cfg);
        // Pre-session documents (no `stop` key) still parse.
        let mut legacy = cfg.to_json();
        if let Json::Obj(pairs) = &mut legacy {
            pairs.retain(|(k, _)| k != "stop");
        }
        let back = TrainConfig::from_json(&legacy).unwrap();
        assert_eq!(back.stop, None);
    }

    #[test]
    fn tier_round_trips_and_legacy_documents_default_to_strict() {
        let cfg = TrainConfig { tier: NumericsTier::Fast, ..TrainConfig::quick_test() };
        let back =
            TrainConfig::from_json(&Json::parse(&cfg.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back.tier, NumericsTier::Fast);
        // Pre-tier documents (no `tier` key) parse as strict.
        let mut legacy = cfg.to_json();
        if let Json::Obj(pairs) = &mut legacy {
            pairs.retain(|(k, _)| k != "tier");
        }
        let back = TrainConfig::from_json(&legacy).unwrap();
        assert_eq!(back.tier, NumericsTier::Strict);
        // Unknown tags are typed schema errors, not silent strict.
        let mut bad = cfg.to_json();
        if let Json::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "tier" {
                    *v = Json::Str("ludicrous".into());
                }
            }
        }
        assert!(TrainConfig::from_json(&bad).is_err());
    }

    #[test]
    fn effective_stop_keeps_the_time_safety_net() {
        let cfg = TrainConfig { stop: Some(StopCondition::LossBelow(0.1)), ..TrainConfig::default() };
        let stop = cfg.effective_stop();
        assert_eq!(
            stop,
            StopCondition::Any(vec![
                StopCondition::LossBelow(0.1),
                StopCondition::MaxSimSeconds(cfg.max_wall_clock_s),
            ])
        );
        assert!(stop.validate().is_ok());
    }

    #[test]
    fn validation_names_the_bad_field() {
        let cfg = TrainConfig { record_every_steps: 0, ..TrainConfig::default() };
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("record_every_steps"), "{err}");
        assert!(TrainConfig::default().validate().is_ok());
    }
}
