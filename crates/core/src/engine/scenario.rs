//! Declarative experiment construction.
//!
//! A [`Scenario`] captures everything that defines one of the paper's
//! experiments — worker count, network regime, workload, data partitioning,
//! seed — and builds a fresh [`Environment`] per run so different
//! algorithms can be compared on byte-identical initial conditions.
//!
//! A scenario is *pure data*: the workload is referenced by a
//! [`WorkloadSpec`] rather than held as instantiated datasets, every field
//! is plain configuration, and the whole struct round-trips through JSON
//! ([`ToJson`]/[`FromJson`]). That makes scenarios storable in experiment
//! registries and run artifacts; the datasets are materialised only at
//! [`Scenario::build_env`] time.

use super::config::TrainConfig;
use super::environment::Environment;
use super::recorder::RunReport;
use super::Algorithm;
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_ml::partition::Partition;
use netmax_ml::workload::{Workload, WorkloadSpec};
use netmax_net::{
    ElasticNetwork, FaultPlan, HomogeneousNetwork, LinkDynamics, LinkQuality, Network,
    NetworkKind, SlowdownConfig, Topology, WanNetwork,
};
use serde::{Deserialize, Serialize};

/// Which communication graph shape connects the workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Complete graph (the paper's default; Appendix B assumes it).
    FullyConnected,
    /// Ring graph.
    Ring,
    /// 2-D torus (`rows × cols` must equal the worker count).
    Torus {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Random connected graph with extra-edge probability `p`.
    Random {
        /// Probability of each non-tree edge.
        p: f64,
    },
}

impl ToJson for TopologyKind {
    fn to_json(&self) -> Json {
        match self {
            TopologyKind::FullyConnected => Json::Str("fully_connected".into()),
            TopologyKind::Ring => Json::Str("ring".into()),
            TopologyKind::Torus { rows, cols } => Json::obj([
                ("torus", Json::obj([("rows", rows.to_json()), ("cols", cols.to_json())])),
            ]),
            TopologyKind::Random { p } => Json::obj([("random", Json::obj([("p", p.to_json())]))]),
        }
    }
}

impl FromJson for TopologyKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => match s.as_str() {
                "fully_connected" => Ok(TopologyKind::FullyConnected),
                "ring" => Ok(TopologyKind::Ring),
                other => Err(JsonError::schema(format!("unknown topology `{other}`"))),
            },
            Json::Obj(_) => {
                if let Some(t) = v.get("torus") {
                    Ok(TopologyKind::Torus {
                        rows: usize::from_json(t.field("rows")?)?,
                        cols: usize::from_json(t.field("cols")?)?,
                    })
                } else if let Some(r) = v.get("random") {
                    Ok(TopologyKind::Random { p: f64::from_json(r.field("p")?)? })
                } else {
                    Err(JsonError::schema("unknown topology variant".into()))
                }
            }
            other => Err(JsonError::schema(format!("expected topology, got {}", other.kind()))),
        }
    }
}

/// Which data partitioning scheme to apply (§V-A vs §V-F).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionKind {
    /// Even split (§V-B–E).
    Uniform,
    /// Segmented non-uniform split with explicit per-node segment counts.
    Segments(Vec<usize>),
    /// The paper's 8-node ⟨1,1,1,1,2,1,2,1⟩ pattern.
    Paper8Segments,
    /// The paper's 16-node pattern.
    Paper16Segments,
    /// Non-IID label removal with explicit lost labels per node.
    LabelSkew(Vec<Vec<u32>>),
    /// Table IV (8-node MNIST).
    PaperTable4,
    /// Table VII (6-region cross-cloud).
    PaperTable7,
}

impl ToJson for PartitionKind {
    fn to_json(&self) -> Json {
        match self {
            PartitionKind::Uniform => Json::Str("uniform".into()),
            PartitionKind::Paper8Segments => Json::Str("paper_8_segments".into()),
            PartitionKind::Paper16Segments => Json::Str("paper_16_segments".into()),
            PartitionKind::PaperTable4 => Json::Str("paper_table4".into()),
            PartitionKind::PaperTable7 => Json::Str("paper_table7".into()),
            PartitionKind::Segments(segs) => Json::obj([("segments", segs.to_json())]),
            PartitionKind::LabelSkew(lost) => Json::obj([("label_skew", lost.to_json())]),
        }
    }
}

impl FromJson for PartitionKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => match s.as_str() {
                "uniform" => Ok(PartitionKind::Uniform),
                "paper_8_segments" => Ok(PartitionKind::Paper8Segments),
                "paper_16_segments" => Ok(PartitionKind::Paper16Segments),
                "paper_table4" => Ok(PartitionKind::PaperTable4),
                "paper_table7" => Ok(PartitionKind::PaperTable7),
                other => Err(JsonError::schema(format!("unknown partition `{other}`"))),
            },
            Json::Obj(_) => {
                if let Some(segs) = v.get("segments") {
                    Ok(PartitionKind::Segments(Vec::from_json(segs)?))
                } else if let Some(lost) = v.get("label_skew") {
                    Ok(PartitionKind::LabelSkew(Vec::from_json(lost)?))
                } else {
                    Err(JsonError::schema("unknown partition variant".into()))
                }
            }
            other => Err(JsonError::schema(format!("expected partition, got {}", other.kind()))),
        }
    }
}

/// A fully specified experiment. Pure data — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    workers: usize,
    servers: usize,
    network: NetworkKind,
    workload: WorkloadSpec,
    partition: PartitionKind,
    cfg: TrainConfig,
    slowdown: SlowdownConfig,
    topology: TopologyKind,
    /// Link-dynamics override: `None` keeps the regime the network kind
    /// implies (the paper's periodic redraw for the heterogeneous kinds,
    /// static links otherwise).
    dynamics: Option<LinkDynamics>,
    /// Declarative fault schedule (empty by default).
    faults: FaultPlan,
}

/// Builder for [`Scenario`]. Field order never matters: every setter
/// stores its value and [`ScenarioBuilder::build`] assembles the scenario,
/// so e.g. `.profile(..)` may precede `.workload(..)`.
pub struct ScenarioBuilder {
    workers: usize,
    servers: Option<usize>,
    network: NetworkKind,
    workload: Option<WorkloadSpec>,
    profile: Option<netmax_ml::profile::ModelProfile>,
    partition: PartitionKind,
    cfg: TrainConfig,
    slowdown: SlowdownConfig,
    topology: TopologyKind,
    dynamics: Option<LinkDynamics>,
    faults: FaultPlan,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// Starts a builder with the paper's defaults (8 workers,
    /// heterogeneous dynamic network, uniform partitioning).
    pub fn new() -> Self {
        Self {
            workers: 8,
            servers: None,
            network: NetworkKind::HeterogeneousDynamic,
            workload: None,
            profile: None,
            partition: PartitionKind::Uniform,
            cfg: TrainConfig::default(),
            slowdown: SlowdownConfig::default(),
            topology: TopologyKind::FullyConnected,
            dynamics: None,
            faults: FaultPlan::none(),
        }
    }

    /// Selects the communication graph shape (default: fully connected).
    pub fn topology(mut self, t: TopologyKind) -> Self {
        self.topology = t;
        self
    }

    /// Overrides the slow-link regime (factor range and change period) of
    /// the heterogeneous network kinds.
    pub fn slowdown(mut self, sd: SlowdownConfig) -> Self {
        self.slowdown = sd;
        self
    }

    /// Overrides the link dynamics (Markov-modulated bandwidth, trace
    /// replay, …). `None`/unset keeps the regime the network kind implies
    /// — the paper's periodic slow-link redraw for the heterogeneous
    /// kinds.
    pub fn dynamics(mut self, d: LinkDynamics) -> Self {
        self.dynamics = Some(d);
        self
    }

    /// Attaches a declarative fault schedule (link degradation/outage
    /// windows, node crash/rejoin times, straggler compute multipliers).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the number of worker nodes.
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two workers");
        self.workers = n;
        self
    }

    /// Overrides the number of physical servers (defaults to the paper's
    /// mapping: 4 workers → 2 servers, 8 → 3, 16 → 4).
    pub fn servers(mut self, s: usize) -> Self {
        assert!(s >= 1);
        self.servers = Some(s);
        self
    }

    /// Selects the network regime.
    pub fn network(mut self, kind: NetworkKind) -> Self {
        self.network = kind;
        self
    }

    /// Sets the workload reference.
    pub fn workload(mut self, w: WorkloadSpec) -> Self {
        self.workload = Some(w);
        self
    }

    /// Overrides the timing profile of the workload. May be called before
    /// or after [`ScenarioBuilder::workload`]; the override is applied at
    /// [`ScenarioBuilder::build`] time.
    pub fn profile(mut self, p: netmax_ml::profile::ModelProfile) -> Self {
        self.profile = Some(p);
        self
    }

    /// Selects the data partitioning scheme.
    pub fn partition(mut self, p: PartitionKind) -> Self {
        self.partition = p;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Overrides the stop/recording configuration.
    pub fn train_config(mut self, cfg: TrainConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Caps the run at `epochs` mean epochs.
    pub fn max_epochs(mut self, epochs: f64) -> Self {
        self.cfg.max_epochs = epochs;
        self
    }

    /// Finalises the scenario.
    ///
    /// # Panics
    /// Panics if no workload was provided.
    pub fn build(self) -> Scenario {
        let mut workload = self.workload.expect("scenario needs a workload");
        if let Some(p) = self.profile {
            workload.profile = Some(p);
        }
        let servers = self.servers.unwrap_or(match self.workers {
            0..=4 => 2,
            5..=8 => 3,
            _ => 4,
        });
        Scenario {
            workers: self.workers,
            servers,
            network: self.network,
            workload,
            partition: self.partition,
            cfg: self.cfg,
            slowdown: self.slowdown,
            topology: self.topology,
            dynamics: self.dynamics,
            faults: self.faults,
        }
    }
}

impl Scenario {
    /// Starts a builder.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The training config.
    pub fn cfg(&self) -> &TrainConfig {
        &self.cfg
    }

    /// The training config (mutable for harness tweaks).
    pub fn cfg_mut(&mut self) -> &mut TrainConfig {
        &mut self.cfg
    }

    /// The workload reference.
    pub fn workload_spec(&self) -> &WorkloadSpec {
        &self.workload
    }

    /// The network regime.
    pub fn network_kind(&self) -> NetworkKind {
        self.network
    }

    /// The link-dynamics override, when one is set.
    pub fn link_dynamics(&self) -> Option<&LinkDynamics> {
        self.dynamics.as_ref()
    }

    /// The declarative fault schedule (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Instantiates the workload (datasets included). Pure: repeated calls
    /// return identical workloads. Prefer [`Scenario::build_env_with`] when
    /// running many cells of the same scenario to share the datasets.
    pub fn workload(&self) -> Workload {
        self.workload.instantiate()
    }

    /// Builds a fresh environment for one run. Identical scenarios build
    /// byte-identical environments.
    pub fn build_env(&self) -> Environment {
        self.build_env_with(self.workload())
    }

    /// Builds a fresh environment around an already-instantiated workload.
    ///
    /// The caller is responsible for passing a workload equal to
    /// `self.workload()`; the executor uses this to instantiate the
    /// datasets once per experiment and share them (via their internal
    /// `Arc`s) across `(arm, seed)` cells.
    pub fn build_env_with(&self, workload: Workload) -> Environment {
        let n = self.workers;
        let topology = match &self.topology {
            TopologyKind::FullyConnected => Topology::fully_connected(n),
            TopologyKind::Ring => Topology::ring(n),
            TopologyKind::Torus { rows, cols } => {
                assert_eq!(rows * cols, n, "torus dimensions must cover the worker count");
                Topology::torus(*rows, *cols)
            }
            TopologyKind::Random { p } => Topology::random_connected(n, *p, self.cfg.seed),
        };
        let elastic = self.dynamics.is_some() || !self.faults.is_empty();
        let network: Box<dyn Network> = match self.network {
            NetworkKind::Homogeneous => {
                if elastic {
                    let net = ElasticNetwork::uniform(n, LinkQuality::virtual_switch_10g())
                        .with_seed(self.cfg.seed)
                        .with_dynamics(self.dynamics.clone().unwrap_or(LinkDynamics::Static))
                        .with_faults(self.faults.clone());
                    Box::new(net)
                } else {
                    Box::new(HomogeneousNetwork::paper_default(n))
                }
            }
            NetworkKind::HeterogeneousDynamic => {
                let spec = netmax_net::ClusterSpec::paper_default(per_server_counts(
                    n,
                    self.servers,
                ));
                let dynamics = self
                    .dynamics
                    .clone()
                    .unwrap_or(LinkDynamics::PeriodicRedraw(self.slowdown));
                Box::new(
                    ElasticNetwork::cluster(spec, dynamics, self.cfg.seed)
                        .with_faults(self.faults.clone()),
                )
            }
            NetworkKind::HeterogeneousStatic => {
                let spec = netmax_net::ClusterSpec::paper_default(per_server_counts(
                    n,
                    self.servers,
                ));
                let sd = SlowdownConfig { dynamic: false, ..self.slowdown };
                let dynamics =
                    self.dynamics.clone().unwrap_or(LinkDynamics::PeriodicRedraw(sd));
                Box::new(
                    ElasticNetwork::cluster(spec, dynamics, self.cfg.seed)
                        .with_faults(self.faults.clone()),
                )
            }
            NetworkKind::Wan => {
                let regions: Vec<usize> = (0..n).map(|i| i % 6).collect();
                if elastic {
                    let net = ElasticNetwork::wan(regions)
                        .with_seed(self.cfg.seed)
                        .with_dynamics(self.dynamics.clone().unwrap_or(LinkDynamics::Static))
                        .with_faults(self.faults.clone());
                    Box::new(net)
                } else {
                    Box::new(WanNetwork::new(regions))
                }
            }
        };
        let partition = match &self.partition {
            PartitionKind::Uniform => {
                Partition::uniform(&workload.train, n, self.cfg.seed)
            }
            PartitionKind::Segments(segs) => {
                assert_eq!(segs.len(), n, "segment list must match worker count");
                Partition::segmented(&workload.train, segs, self.cfg.seed)
            }
            PartitionKind::Paper8Segments => {
                assert_eq!(n, 8, "Paper8Segments requires 8 workers");
                Partition::paper_8node_segments(&workload.train, self.cfg.seed)
            }
            PartitionKind::Paper16Segments => {
                assert_eq!(n, 16, "Paper16Segments requires 16 workers");
                Partition::paper_16node_segments(&workload.train, self.cfg.seed)
            }
            PartitionKind::LabelSkew(lost) => {
                assert_eq!(lost.len(), n, "lost-label list must match worker count");
                Partition::label_skew(&workload.train, lost)
            }
            PartitionKind::PaperTable4 => {
                assert_eq!(n, 8, "Table IV requires 8 workers");
                Partition::paper_table4(&workload.train)
            }
            PartitionKind::PaperTable7 => {
                assert_eq!(n, 6, "Table VII requires 6 workers");
                Partition::paper_table7(&workload.train)
            }
        };
        let mut env = Environment::new(topology, network, workload, partition, self.cfg.clone());
        env.set_fault_plan(self.faults.clone());
        env
    }

    /// Builds an environment and runs `algorithm` on it.
    pub fn run_with(&self, algorithm: &mut dyn Algorithm) -> RunReport {
        let mut env = self.build_env();
        algorithm.run(&mut env)
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("workers", self.workers.to_json()),
            ("servers", self.servers.to_json()),
            ("network", self.network.to_json()),
            ("workload", self.workload.to_json()),
            ("partition", self.partition.to_json()),
            ("train", self.cfg.to_json()),
            ("slowdown", self.slowdown.to_json()),
            ("topology", self.topology.to_json()),
        ];
        // Elastic extensions are emitted only when used, so pre-fault
        // scenario documents stay byte-identical.
        if let Some(d) = &self.dynamics {
            fields.push(("dynamics", d.to_json()));
        }
        if !self.faults.is_empty() {
            fields.push(("faults", self.faults.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for Scenario {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            workers: usize::from_json(v.field("workers")?)?,
            servers: usize::from_json(v.field("servers")?)?,
            network: NetworkKind::from_json(v.field("network")?)?,
            workload: WorkloadSpec::from_json(v.field("workload")?)?,
            partition: PartitionKind::from_json(v.field("partition")?)?,
            cfg: TrainConfig::from_json(v.field("train")?)?,
            slowdown: SlowdownConfig::from_json(v.field("slowdown")?)?,
            topology: TopologyKind::from_json(v.field("topology")?)?,
            // Absent in pre-elastic documents; tolerate for compatibility.
            dynamics: match v.get("dynamics") {
                None | Some(Json::Null) => None,
                Some(d) => Some(LinkDynamics::from_json(d)?),
            },
            faults: match v.get("faults") {
                None | Some(Json::Null) => FaultPlan::none(),
                Some(f) => FaultPlan::from_json(f)?,
            },
        })
    }
}

/// The paper's worker→server placement: `n` workers spread as evenly as
/// possible over `servers` machines, larger groups last, empty servers
/// dropped. Exposed so harnesses can assert placement invariants for the
/// worker counts they register.
pub fn per_server_counts(n: usize, servers: usize) -> Vec<usize> {
    let per = n.div_ceil(servers);
    let mut counts = vec![per; servers];
    let excess = per * servers - n;
    for c in counts.iter_mut().take(excess) {
        *c -= 1;
    }
    counts.retain(|&c| c > 0);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_env() {
        let sc = Scenario::builder()
            .workers(4)
            .workload(WorkloadSpec::convex_ridge(1))
            .max_epochs(1.0)
            .seed(9)
            .build();
        let env = sc.build_env();
        assert_eq!(env.num_nodes(), 4);
        assert!(env.topology.is_connected());
    }

    #[test]
    fn identical_scenarios_build_identical_envs() {
        let mk = || {
            Scenario::builder()
                .workers(4)
                .workload(WorkloadSpec::convex_ridge(2))
                .seed(5)
                .build()
                .build_env()
        };
        let a = mk();
        let b = mk();
        for i in 0..4 {
            assert_eq!(a.nodes[i].model.params(), b.nodes[i].model.params());
            assert_eq!(a.partition.node(i), b.partition.node(i));
        }
    }

    #[test]
    fn profile_override_is_order_independent() {
        use netmax_ml::profile::ModelProfile;
        let before = Scenario::builder()
            .profile(ModelProfile::vgg19())
            .workload(WorkloadSpec::convex_ridge(1))
            .build();
        let after = Scenario::builder()
            .workload(WorkloadSpec::convex_ridge(1))
            .profile(ModelProfile::vgg19())
            .build();
        assert_eq!(before, after);
        assert_eq!(before.workload().profile, ModelProfile::vgg19());
    }

    #[test]
    fn network_kinds_build() {
        for kind in [
            NetworkKind::Homogeneous,
            NetworkKind::HeterogeneousDynamic,
            NetworkKind::HeterogeneousStatic,
            NetworkKind::Wan,
        ] {
            let sc = Scenario::builder()
                .workers(6)
                .network(kind)
                .workload(WorkloadSpec::convex_ridge(1))
                .build();
            let env = sc.build_env();
            assert!(env.comm_time(0, 1, 0.0) > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn paper_partitions_validate_worker_counts() {
        let sc = Scenario::builder()
            .workers(8)
            .workload(WorkloadSpec::mobilenet_mnist(1))
            .partition(PartitionKind::PaperTable4)
            .build();
        let env = sc.build_env();
        assert_eq!(env.partition.num_nodes(), 8);
    }

    #[test]
    #[should_panic(expected = "Table IV requires 8 workers")]
    fn table4_wrong_worker_count_panics() {
        let sc = Scenario::builder()
            .workers(4)
            .workload(WorkloadSpec::mobilenet_mnist(1))
            .partition(PartitionKind::PaperTable4)
            .build();
        let _ = sc.build_env();
    }

    #[test]
    fn sparse_topologies_build_and_train() {
        for kind in [
            TopologyKind::Ring,
            TopologyKind::Torus { rows: 2, cols: 3 },
            TopologyKind::Random { p: 0.3 },
        ] {
            let sc = Scenario::builder()
                .workers(6)
                .topology(kind.clone())
                .workload(WorkloadSpec::convex_ridge(1))
                .max_epochs(1.0)
                .seed(4)
                .build();
            let env = sc.build_env();
            assert!(env.topology.is_connected(), "{kind:?}");
            assert!(env.topology.num_edges() <= 15, "{kind:?} should be sparser than K6");
        }
    }

    #[test]
    fn per_server_counts_cover_all_workers() {
        assert_eq!(per_server_counts(8, 3), vec![2, 3, 3]);
        assert_eq!(per_server_counts(4, 2), vec![2, 2]);
        assert_eq!(per_server_counts(16, 4), vec![4, 4, 4, 4]);
        assert_eq!(per_server_counts(8, 3).iter().sum::<usize>(), 8);
    }

    #[test]
    fn scenario_json_round_trip_builds_identical_env() {
        let sc = Scenario::builder()
            .workers(6)
            .network(NetworkKind::HeterogeneousDynamic)
            .workload(WorkloadSpec::convex_ridge(2).time_scaled(0.5))
            .partition(PartitionKind::Segments(vec![1, 2, 1, 1, 2, 1]))
            .topology(TopologyKind::Random { p: 0.4 })
            .max_epochs(1.0)
            .seed(11)
            .build();
        let text = sc.to_json().pretty();
        let back = Scenario::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, sc);
        let (a, b) = (sc.build_env(), back.build_env());
        assert_eq!(a.num_nodes(), b.num_nodes());
        for i in 0..a.num_nodes() {
            assert_eq!(a.nodes[i].model.params(), b.nodes[i].model.params());
            assert_eq!(a.partition.node(i), b.partition.node(i));
        }
    }

    #[test]
    fn enum_kind_json_round_trips() {
        for t in [
            TopologyKind::FullyConnected,
            TopologyKind::Ring,
            TopologyKind::Torus { rows: 2, cols: 4 },
            TopologyKind::Random { p: 0.25 },
        ] {
            let back =
                TopologyKind::from_json(&Json::parse(&t.to_json().to_string()).unwrap()).unwrap();
            assert_eq!(back, t);
        }
        for p in [
            PartitionKind::Uniform,
            PartitionKind::Segments(vec![1, 2]),
            PartitionKind::Paper8Segments,
            PartitionKind::Paper16Segments,
            PartitionKind::LabelSkew(vec![vec![0, 1], vec![2]]),
            PartitionKind::PaperTable4,
            PartitionKind::PaperTable7,
        ] {
            let back =
                PartitionKind::from_json(&Json::parse(&p.to_json().to_string()).unwrap()).unwrap();
            assert_eq!(back, p);
        }
    }
}
