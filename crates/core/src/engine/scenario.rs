//! Declarative experiment construction.
//!
//! A [`Scenario`] captures everything that defines one of the paper's
//! experiments — worker count, network regime, workload, data partitioning,
//! seed — and builds a fresh [`Environment`] per run so different
//! algorithms can be compared on byte-identical initial conditions.

use super::config::TrainConfig;
use super::environment::Environment;
use super::recorder::RunReport;
use super::Algorithm;
use netmax_ml::partition::Partition;
use netmax_ml::workload::Workload;
use netmax_net::{
    HeterogeneousDynamicNetwork, HomogeneousNetwork, Network, NetworkKind, SlowdownConfig,
    Topology, WanNetwork,
};
use serde::{Deserialize, Serialize};

/// Which communication graph shape connects the workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Complete graph (the paper's default; Appendix B assumes it).
    FullyConnected,
    /// Ring graph.
    Ring,
    /// 2-D torus (`rows × cols` must equal the worker count).
    Torus {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Random connected graph with extra-edge probability `p`.
    Random {
        /// Probability of each non-tree edge.
        p: f64,
    },
}

/// Which data partitioning scheme to apply (§V-A vs §V-F).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionKind {
    /// Even split (§V-B–E).
    Uniform,
    /// Segmented non-uniform split with explicit per-node segment counts.
    Segments(Vec<usize>),
    /// The paper's 8-node ⟨1,1,1,1,2,1,2,1⟩ pattern.
    Paper8Segments,
    /// The paper's 16-node pattern.
    Paper16Segments,
    /// Non-IID label removal with explicit lost labels per node.
    LabelSkew(Vec<Vec<u32>>),
    /// Table IV (8-node MNIST).
    PaperTable4,
    /// Table VII (6-region cross-cloud).
    PaperTable7,
}

/// A fully specified experiment.
#[derive(Clone)]
pub struct Scenario {
    workers: usize,
    servers: usize,
    network: NetworkKind,
    workload: Workload,
    partition: PartitionKind,
    cfg: TrainConfig,
    slowdown: SlowdownConfig,
    topology: TopologyKind,
}

/// Builder for [`Scenario`].
pub struct ScenarioBuilder {
    workers: usize,
    servers: Option<usize>,
    network: NetworkKind,
    workload: Option<Workload>,
    partition: PartitionKind,
    cfg: TrainConfig,
    slowdown: SlowdownConfig,
    topology: TopologyKind,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// Starts a builder with the paper's defaults (8 workers,
    /// heterogeneous dynamic network, uniform partitioning).
    pub fn new() -> Self {
        Self {
            workers: 8,
            servers: None,
            network: NetworkKind::HeterogeneousDynamic,
            workload: None,
            partition: PartitionKind::Uniform,
            cfg: TrainConfig::default(),
            slowdown: SlowdownConfig::default(),
            topology: TopologyKind::FullyConnected,
        }
    }

    /// Selects the communication graph shape (default: fully connected).
    pub fn topology(mut self, t: TopologyKind) -> Self {
        self.topology = t;
        self
    }

    /// Overrides the slow-link regime (factor range and change period) of
    /// the heterogeneous network kinds.
    pub fn slowdown(mut self, sd: SlowdownConfig) -> Self {
        self.slowdown = sd;
        self
    }

    /// Sets the number of worker nodes.
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two workers");
        self.workers = n;
        self
    }

    /// Overrides the number of physical servers (defaults to the paper's
    /// mapping: 4 workers → 2 servers, 8 → 3, 16 → 4).
    pub fn servers(mut self, s: usize) -> Self {
        assert!(s >= 1);
        self.servers = Some(s);
        self
    }

    /// Selects the network regime.
    pub fn network(mut self, kind: NetworkKind) -> Self {
        self.network = kind;
        self
    }

    /// Sets the workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = Some(w);
        self
    }

    /// Convenience: override the timing profile of the workload.
    pub fn profile(mut self, p: netmax_ml::profile::ModelProfile) -> Self {
        if let Some(w) = self.workload.as_mut() {
            w.profile = p;
        } else {
            panic!("set a workload before overriding its profile");
        }
        self
    }

    /// Selects the data partitioning scheme.
    pub fn partition(mut self, p: PartitionKind) -> Self {
        self.partition = p;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Overrides the stop/recording configuration.
    pub fn train_config(mut self, cfg: TrainConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Caps the run at `epochs` mean epochs.
    pub fn max_epochs(mut self, epochs: f64) -> Self {
        self.cfg.max_epochs = epochs;
        self
    }

    /// Finalises the scenario.
    ///
    /// # Panics
    /// Panics if no workload was provided.
    pub fn build(self) -> Scenario {
        let workload = self.workload.expect("scenario needs a workload");
        let servers = self.servers.unwrap_or(match self.workers {
            0..=4 => 2,
            5..=8 => 3,
            _ => 4,
        });
        Scenario {
            workers: self.workers,
            servers,
            network: self.network,
            workload,
            partition: self.partition,
            cfg: self.cfg,
            slowdown: self.slowdown,
            topology: self.topology,
        }
    }
}

impl Scenario {
    /// Starts a builder.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The training config (mutable for harness tweaks).
    pub fn cfg_mut(&mut self) -> &mut TrainConfig {
        &mut self.cfg
    }

    /// The workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Builds a fresh environment for one run. Identical scenarios build
    /// byte-identical environments.
    pub fn build_env(&self) -> Environment {
        let n = self.workers;
        let topology = match &self.topology {
            TopologyKind::FullyConnected => Topology::fully_connected(n),
            TopologyKind::Ring => Topology::ring(n),
            TopologyKind::Torus { rows, cols } => {
                assert_eq!(rows * cols, n, "torus dimensions must cover the worker count");
                Topology::torus(*rows, *cols)
            }
            TopologyKind::Random { p } => Topology::random_connected(n, *p, self.cfg.seed),
        };
        let network: Box<dyn Network> = match self.network {
            NetworkKind::Homogeneous => Box::new(HomogeneousNetwork::paper_default(n)),
            NetworkKind::HeterogeneousDynamic => {
                let spec = netmax_net::ClusterSpec::paper_default(per_server_counts(
                    n,
                    self.servers,
                ));
                Box::new(HeterogeneousDynamicNetwork::new(spec, self.slowdown, self.cfg.seed))
            }
            NetworkKind::HeterogeneousStatic => {
                let spec = netmax_net::ClusterSpec::paper_default(per_server_counts(
                    n,
                    self.servers,
                ));
                let sd = SlowdownConfig { dynamic: false, ..self.slowdown };
                Box::new(HeterogeneousDynamicNetwork::new(spec, sd, self.cfg.seed))
            }
            NetworkKind::Wan => {
                let regions = (0..n).map(|i| i % 6).collect();
                Box::new(WanNetwork::new(regions))
            }
        };
        let partition = match &self.partition {
            PartitionKind::Uniform => {
                Partition::uniform(&self.workload.train, n, self.cfg.seed)
            }
            PartitionKind::Segments(segs) => {
                assert_eq!(segs.len(), n, "segment list must match worker count");
                Partition::segmented(&self.workload.train, segs, self.cfg.seed)
            }
            PartitionKind::Paper8Segments => {
                assert_eq!(n, 8, "Paper8Segments requires 8 workers");
                Partition::paper_8node_segments(&self.workload.train, self.cfg.seed)
            }
            PartitionKind::Paper16Segments => {
                assert_eq!(n, 16, "Paper16Segments requires 16 workers");
                Partition::paper_16node_segments(&self.workload.train, self.cfg.seed)
            }
            PartitionKind::LabelSkew(lost) => {
                assert_eq!(lost.len(), n, "lost-label list must match worker count");
                Partition::label_skew(&self.workload.train, lost)
            }
            PartitionKind::PaperTable4 => {
                assert_eq!(n, 8, "Table IV requires 8 workers");
                Partition::paper_table4(&self.workload.train)
            }
            PartitionKind::PaperTable7 => {
                assert_eq!(n, 6, "Table VII requires 6 workers");
                Partition::paper_table7(&self.workload.train)
            }
        };
        Environment::new(topology, network, self.workload.clone(), partition, self.cfg.clone())
    }

    /// Builds an environment and runs `algorithm` on it.
    pub fn run_with(&self, algorithm: &mut dyn Algorithm) -> RunReport {
        let mut env = self.build_env();
        algorithm.run(&mut env)
    }
}

fn per_server_counts(n: usize, servers: usize) -> Vec<usize> {
    let per = n.div_ceil(servers);
    let mut counts = vec![per; servers];
    let excess = per * servers - n;
    for c in counts.iter_mut().take(excess) {
        *c -= 1;
    }
    counts.retain(|&c| c > 0);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_env() {
        let sc = Scenario::builder()
            .workers(4)
            .workload(Workload::convex_ridge(1))
            .max_epochs(1.0)
            .seed(9)
            .build();
        let env = sc.build_env();
        assert_eq!(env.num_nodes(), 4);
        assert!(env.topology.is_connected());
    }

    #[test]
    fn identical_scenarios_build_identical_envs() {
        let mk = || {
            Scenario::builder()
                .workers(4)
                .workload(Workload::convex_ridge(2))
                .seed(5)
                .build()
                .build_env()
        };
        let a = mk();
        let b = mk();
        for i in 0..4 {
            assert_eq!(a.nodes[i].model.params(), b.nodes[i].model.params());
            assert_eq!(a.partition.node(i), b.partition.node(i));
        }
    }

    #[test]
    fn network_kinds_build() {
        for kind in [
            NetworkKind::Homogeneous,
            NetworkKind::HeterogeneousDynamic,
            NetworkKind::HeterogeneousStatic,
            NetworkKind::Wan,
        ] {
            let sc = Scenario::builder()
                .workers(6)
                .network(kind)
                .workload(Workload::convex_ridge(1))
                .build();
            let env = sc.build_env();
            assert!(env.comm_time(0, 1, 0.0) > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn paper_partitions_validate_worker_counts() {
        let sc = Scenario::builder()
            .workers(8)
            .workload(Workload::mobilenet_mnist(1))
            .partition(PartitionKind::PaperTable4)
            .build();
        let env = sc.build_env();
        assert_eq!(env.partition.num_nodes(), 8);
    }

    #[test]
    #[should_panic(expected = "Table IV requires 8 workers")]
    fn table4_wrong_worker_count_panics() {
        let sc = Scenario::builder()
            .workers(4)
            .workload(Workload::mobilenet_mnist(1))
            .partition(PartitionKind::PaperTable4)
            .build();
        let _ = sc.build_env();
    }

    #[test]
    fn sparse_topologies_build_and_train() {
        for kind in [
            TopologyKind::Ring,
            TopologyKind::Torus { rows: 2, cols: 3 },
            TopologyKind::Random { p: 0.3 },
        ] {
            let sc = Scenario::builder()
                .workers(6)
                .topology(kind.clone())
                .workload(Workload::convex_ridge(1))
                .max_epochs(1.0)
                .seed(4)
                .build();
            let env = sc.build_env();
            assert!(env.topology.is_connected(), "{kind:?}");
            assert!(env.topology.num_edges() <= 15, "{kind:?} should be sparser than K6");
        }
    }

    #[test]
    fn per_server_counts_cover_all_workers() {
        assert_eq!(per_server_counts(8, 3), vec![2, 3, 3]);
        assert_eq!(per_server_counts(4, 2), vec![2, 2]);
        assert_eq!(per_server_counts(16, 4), vec![4, 4, 4, 4]);
        assert_eq!(per_server_counts(8, 3).iter().sum::<usize>(), 8);
    }
}
