//! Shared simulation state: node replicas, data shards, network, clocks.

use super::config::TrainConfig;
use super::session::{rng_from_json, rng_to_json, SessionError};
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_ml::batch::BatchSampler;
use netmax_ml::model::{Model, Scratch};
use netmax_ml::optim::SgdState;
use netmax_ml::partition::Partition;
use netmax_ml::workload::Workload;
use netmax_net::{FaultPlan, Network, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-worker simulation state: one model replica plus its optimiser,
/// shard sampler, and virtual clock.
pub struct NodeState {
    /// The node's model replica (`x_i` in the paper).
    pub model: Box<dyn Model>,
    /// Momentum state.
    pub opt: SgdState,
    /// Mini-batch sampler over this node's shard.
    pub sampler: BatchSampler,
    /// The node's virtual clock (seconds).
    pub clock: f64,
    /// Accumulated gradient-computation time (`Σ C_i`).
    pub comp_time_total: f64,
    /// Accumulated *exposed* communication time: iteration time minus
    /// compute. Under parallel execution this is the non-overlapped part.
    pub comm_exposed_total: f64,
    /// Local iteration counter (`n` of Algorithm 2).
    pub local_steps: u64,
    /// The node's last gradient from the split compute/apply path
    /// ([`Environment::compute_gradient`]) — per-node because the
    /// synchronous baselines hold every node's gradient at once before
    /// aggregating. Empty until that path is first used; the fused
    /// [`Environment::gradient_step`] never touches it.
    grad: Vec<f32>,
    /// Learning rate captured by [`Environment::compute_gradient`] *before*
    /// its batch draw, consumed by [`Environment::apply_gradient`] — the
    /// split compute/apply path of the synchronous baselines charges the
    /// same lr as the fused [`Environment::gradient_step`]. Transient
    /// within one driver advance, so it is not checkpointed.
    pending_lr: f64,
}

impl NodeState {
    /// Fractional epochs this node has completed over its own shard.
    pub fn epochs(&self) -> f64 {
        self.sampler.epochs_elapsed()
    }
}

/// Everything an algorithm needs to run one simulated training job.
pub struct Environment {
    /// Communication graph `G` (who may gossip with whom).
    pub topology: Topology,
    /// Ground-truth link timing.
    pub network: Box<dyn Network>,
    /// Dataset + model + hyper-parameters.
    pub workload: Workload,
    /// Which examples each node owns.
    pub partition: Partition,
    /// Per-node state.
    pub nodes: Vec<NodeState>,
    /// Engine configuration.
    pub cfg: TrainConfig,
    /// Seeded RNG for *global* algorithmic randomness (e.g. Prague's
    /// group matching). Per-node decisions must use [`Environment::node_rng`]
    /// instead so random streams stay aligned across runs that differ only
    /// in event interleaving (common random numbers).
    pub rng: StdRng,
    /// Per-node RNG streams for peer selection and other per-node
    /// decisions. Keyed by node, not by dispatch order: node `i`'s `k`-th
    /// draw is identical across execution modes, which is what makes e.g.
    /// the Fig. 7 serial-vs-parallel comparison a paired experiment rather
    /// than two independent samples.
    node_rngs: Vec<StdRng>,
    /// Global step counter `k` (advanced by drivers).
    pub global_step: u64,
    /// Pool of parameter-sized buffers for transient pulls/aggregations
    /// ([`Environment::take_param_buf`]); transient, never checkpointed.
    param_pool: Vec<Vec<f32>>,
    /// The scenario's declarative fault schedule (empty by default). Link
    /// faults are interpreted by the network; node faults and stragglers
    /// by this environment and the [`Session`](super::session::Session)
    /// walking its membership schedule.
    fault_plan: FaultPlan,
    /// Active-membership flags: `active[i]` is `false` while node `i` is
    /// crashed. Driven by the session on the virtual clock.
    active: Vec<bool>,
    /// Count of `false` entries in `active`, kept in sync by
    /// [`Environment::set_active`] — the zero check is the fast path that
    /// keeps fault-free peer draws at the old one-index cost.
    num_inactive: usize,
    /// Per-node compute-time multipliers from the fault plan's straggler
    /// entries (1.0 everywhere by default).
    compute_factors: Vec<f64>,
    /// Shared gradient workspace (forward/backward buffers plus the
    /// batch-mean gradient). The engine dispatches exactly one node at a
    /// time, every kernel fully overwrites what it reads, and all
    /// replicas share one model shape — so a single pooled workspace is
    /// bit-identical to the former per-node copies while shrinking an
    /// n = 4096 fleet's transient memory from O(n · workspace) to O(1).
    scratch: Scratch,
}

impl Environment {
    /// Builds an environment: one replica per partition shard.
    ///
    /// # Panics
    /// Panics if the partition, topology, and network disagree on the
    /// number of nodes, or if any shard is empty.
    pub fn new(
        topology: Topology,
        network: Box<dyn Network>,
        workload: Workload,
        partition: Partition,
        cfg: TrainConfig,
    ) -> Self {
        let n = topology.len();
        assert_eq!(partition.num_nodes(), n, "partition/topology node count mismatch");
        assert_eq!(network.num_nodes(), n, "network/topology node count mismatch");

        let nodes = (0..n)
            .map(|i| {
                let shard = partition.node(i).to_vec();
                assert!(!shard.is_empty(), "node {i} received an empty shard");
                let batch = partition.batch_size(i, workload.batch_size);
                let model = workload.build_model(cfg.seed.wrapping_add(i as u64));
                let num_params = model.num_params();
                NodeState {
                    model,
                    opt: SgdState::new(num_params),
                    sampler: BatchSampler::new(
                        shard,
                        batch,
                        cfg.seed.wrapping_add(1000 + i as u64),
                    ),
                    clock: 0.0,
                    comp_time_total: 0.0,
                    comm_exposed_total: 0.0,
                    local_steps: 0,
                    grad: Vec::new(),
                    pending_lr: workload.optim.lr_at(0.0),
                }
            })
            .collect();

        let cfg_tier = cfg.tier;
        let rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let node_rngs = (0..n)
            .map(|i| {
                StdRng::seed_from_u64(
                    cfg.seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(0xD1B5_4A32_D192_ED03_u64.wrapping_mul(1 + i as u64)),
                )
            })
            .collect();
        Self {
            topology,
            network,
            workload,
            partition,
            nodes,
            cfg,
            rng,
            node_rngs,
            global_step: 0,
            param_pool: Vec::new(),
            fault_plan: FaultPlan::none(),
            active: vec![true; n],
            num_inactive: 0,
            compute_factors: vec![1.0; n],
            scratch: Scratch::for_tier(cfg_tier),
        }
    }

    /// Installs the scenario's fault plan: straggler compute multipliers
    /// take effect immediately; crash/rejoin transitions are walked by
    /// the session on the virtual clock.
    ///
    /// # Panics
    /// Panics if the plan fails validation against this fleet size (same
    /// convention as the other construction-time shape checks).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        plan.validate(self.num_nodes())
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        for (i, f) in self.compute_factors.iter_mut().enumerate() {
            *f = plan.compute_factor(i);
        }
        self.fault_plan = plan;
    }

    /// The installed fault plan (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Number of worker nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether node `i` is currently alive (crashed nodes are excluded
    /// from scheduling, peer selection, and fleet metrics).
    #[inline]
    pub fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// The active-membership flags, indexed by node.
    pub fn active_flags(&self) -> &[bool] {
        &self.active
    }

    /// Number of currently active nodes.
    #[inline]
    pub fn num_active(&self) -> usize {
        self.active.len() - self.num_inactive
    }

    /// Flips node `i`'s membership flag (driven by the session walking
    /// the fault plan's schedule).
    pub fn set_active(&mut self, i: usize, active: bool) {
        if self.active[i] != active {
            if active {
                self.num_inactive -= 1;
            } else {
                self.num_inactive += 1;
            }
            self.active[i] = active;
        }
    }

    /// Number of *active* neighbours of `i` in the communication graph.
    pub fn active_degree(&self, i: usize) -> usize {
        let nbrs = self.topology.neighbors(i);
        if self.num_inactive == 0 {
            return nbrs.len();
        }
        nbrs.iter().filter(|&&m| self.active[m]).count()
    }

    /// The `k`-th active neighbour of `i` (in neighbour-list order).
    ///
    /// # Panics
    /// Panics if fewer than `k + 1` active neighbours exist.
    pub fn nth_active_neighbor(&self, i: usize, k: usize) -> usize {
        self.topology
            .neighbors(i)
            .iter()
            .copied()
            .filter(|&m| self.active[m])
            .nth(k)
            .expect("active neighbour index out of range")
    }

    /// Draws a uniformly random *active* neighbour of `i` from the node's
    /// private RNG stream, or `None` when every neighbour is down. With
    /// all nodes active this consumes exactly the same draw as the
    /// classic `gen_range(0..degree)` over the full neighbour list at the
    /// same one-index cost, and it allocates nothing.
    pub fn sample_active_neighbor(&mut self, i: usize) -> Option<usize> {
        draw_active(
            self.topology.neighbors(i),
            &self.active,
            self.num_inactive == 0,
            &mut self.node_rngs[i],
        )
    }

    /// [`Environment::sample_active_neighbor`] over an arbitrary
    /// neighbour list (e.g. SAPS-PSGD's frozen fast subgraph) instead of
    /// the environment's own topology. Same guarantees: the all-active
    /// draw is the classic full-list `gen_range` on the same RNG stream,
    /// allocation-free.
    pub fn sample_active_from(&mut self, i: usize, nbrs: &[usize]) -> Option<usize> {
        draw_active(nbrs, &self.active, self.num_inactive == 0, &mut self.node_rngs[i])
    }

    /// Warm-starts a rejoining node from a live peer's replica: copies
    /// the parameters *and* momentum buffer of the lowest-indexed active
    /// donor (a full optimiser-state clone — the lockstep drivers rely
    /// on identical velocity to keep replicas bit-identical after a
    /// rejoin), and advances the node's clock to the rejoin time.
    /// Returns the donor, or `None` (cold restart from its own stale
    /// replica) when no other node is alive.
    pub fn warm_start(&mut self, i: usize, now: f64) -> Option<usize> {
        let donor = (0..self.num_nodes()).find(|&j| j != i && self.active[j]);
        if let Some(d) = donor {
            let (src, dst) = if d < i {
                let (a, b) = self.nodes.split_at_mut(i);
                (&a[d], &mut b[0])
            } else {
                let (a, b) = self.nodes.split_at_mut(d);
                (&b[0], &mut a[i])
            };
            dst.model.params_mut().copy_from_slice(src.model.params());
            dst.opt.velocity_mut().copy_from_slice(src.opt.velocity());
        }
        let node = &mut self.nodes[i];
        node.clock = node.clock.max(now);
        donor
    }

    /// Nominal per-node gradient-compute times (fixed batch size ⇒ fixed
    /// `C_i`, scaled by the fault plan's straggler multipliers) — the
    /// schedule basis every event-driven session driver derives at
    /// start/restore.
    pub fn nominal_compute_times(&self) -> Vec<f64> {
        (0..self.num_nodes())
            .map(|i| {
                let b = self.partition.batch_size(i, self.workload.batch_size);
                self.compute_factors[i] * self.workload.profile.compute_time(b)
            })
            .collect()
    }

    /// Node `i`'s private RNG stream. All randomness attributable to a
    /// single node (peer selection above all) must come from here, so that
    /// the node's decision sequence is independent of the global event
    /// interleaving — see the `node_rngs` field docs.
    pub fn node_rng(&mut self, i: usize) -> &mut StdRng {
        &mut self.node_rngs[i]
    }

    /// Performs one local SGD step on node `i` (Algorithm 2 line 11):
    /// draws a mini-batch, computes the gradient, applies the momentum SGD
    /// update at the scheduled learning rate. Returns the simulated
    /// compute time `C_i`.
    ///
    /// The learning rate is read **before** the batch draw advances the
    /// epoch counter, so a milestone at epoch `E` first applies to the
    /// first step *of* epoch `E` — not to the step that completes epoch
    /// `E − 1`. [`Environment::compute_gradient`] captures the lr at the
    /// same point, so the fused and the split compute/apply paths cross
    /// milestones on exactly the same step.
    pub fn gradient_step(&mut self, i: usize) -> f64 {
        let lr = self.workload.optim.lr_at(self.nodes[i].epochs());
        let node = &mut self.nodes[i];
        let batch = node.sampler.next_batch();
        let _loss = node
            .model
            .loss_grad_scratch(&self.workload.train, batch, &mut self.scratch);
        node.opt
            .step(&self.workload.optim, lr, node.model.params_mut(), &self.scratch.grad);
        node.local_steps += 1;
        self.compute_factors[i] * self.workload.profile.compute_time(batch.len())
    }

    /// Computes a mini-batch gradient on node `i` **without** applying it
    /// — the primitive the synchronous baselines (Allreduce-SGD, PS-sync)
    /// need to average gradients before updating. The gradient lands in
    /// the node's reusable buffer ([`Environment::grad`]); no allocation.
    /// Also captures the pre-draw learning rate for
    /// [`Environment::apply_gradient`]. Returns the simulated compute
    /// time `C_i`.
    pub fn compute_gradient(&mut self, i: usize) -> f64 {
        let lr = self.workload.optim.lr_at(self.nodes[i].epochs());
        let node = &mut self.nodes[i];
        node.pending_lr = lr;
        let batch = node.sampler.next_batch();
        let _loss = node
            .model
            .loss_grad_scratch(&self.workload.train, batch, &mut self.scratch);
        // Park the result in the node's own buffer: the synchronous
        // drivers compute every node's gradient before reading any of
        // them, so the shared workspace cannot hold it. Steady-state
        // cost is a copy into retained capacity, not an allocation.
        node.grad.clear();
        node.grad.extend_from_slice(&self.scratch.grad);
        node.local_steps += 1;
        self.compute_factors[i] * self.workload.profile.compute_time(batch.len())
    }

    /// The gradient computed by the last [`Environment::compute_gradient`]
    /// on node `i`.
    pub fn grad(&self, i: usize) -> &[f32] {
        &self.nodes[i].grad
    }

    /// Applies a (possibly aggregated) gradient to node `i` through its
    /// momentum optimiser, at the learning rate captured when the node's
    /// gradient was computed (see [`Environment::gradient_step`] for the
    /// milestone semantics).
    pub fn apply_gradient(&mut self, i: usize, grad: &[f32]) {
        let node = &mut self.nodes[i];
        node.opt
            .step(&self.workload.optim, node.pending_lr, node.model.params_mut(), grad);
    }

    /// Learning rate currently in effect for node `i`.
    pub fn lr(&self, i: usize) -> f64 {
        self.workload.optim.lr_at(self.nodes[i].epochs())
    }

    /// The learning rate captured by node `i`'s last
    /// [`Environment::compute_gradient`] (the rate its pending gradient
    /// must be applied at).
    pub fn pending_lr(&self, i: usize) -> f64 {
        self.nodes[i].pending_lr
    }

    /// Communication time to pull one full model from `m` to `i` starting
    /// at `now` (`N_{i,m}` of §II-B).
    pub fn comm_time(&self, i: usize, m: usize, now: f64) -> f64 {
        self.network
            .comm_time(m, i, self.workload.profile.param_bytes(), now)
    }

    /// Checks that node `m` exists and is alive — the gate on every pull
    /// path, so an out-of-range index or a peer that crashed mid-transfer
    /// surfaces as a typed [`SessionError`] instead of a panic.
    fn check_peer(&self, m: usize) -> Result<(), SessionError> {
        if m >= self.nodes.len() {
            return Err(SessionError::NodeUnavailable {
                node: m,
                fleet: Some(self.nodes.len()),
            });
        }
        if !self.active[m] {
            return Err(SessionError::NodeUnavailable { node: m, fleet: None });
        }
        Ok(())
    }

    /// Snapshot of node `m`'s parameters (the pulled `x_m`). Fails with a
    /// typed error when `m` is out of range or currently down.
    pub fn pull_params(&self, m: usize) -> Result<Vec<f32>, SessionError> {
        self.check_peer(m)?;
        Ok(self.nodes[m].model.params().to_vec())
    }

    /// Copies node `m`'s parameters into `out` (cleared first) — the
    /// allocation-free pull used with the
    /// [`Environment::take_param_buf`] pool. Fails with a typed error
    /// when `m` is out of range or currently down (the caller decides
    /// whether a failed pull skips the merge or aborts).
    pub fn pull_params_into(&self, m: usize, out: &mut Vec<f32>) -> Result<(), SessionError> {
        self.check_peer(m)?;
        out.clear();
        out.extend_from_slice(self.nodes[m].model.params());
        Ok(())
    }

    /// Checks a parameter-sized buffer out of the pool (empty on first
    /// use; warm afterwards). Return it with
    /// [`Environment::recycle_param_buf`] so steady-state gossip steps
    /// allocate nothing.
    pub fn take_param_buf(&mut self) -> Vec<f32> {
        self.param_pool.pop().unwrap_or_default()
    }

    /// Returns a buffer obtained from [`Environment::take_param_buf`] to
    /// the pool, retaining its capacity.
    pub fn recycle_param_buf(&mut self, buf: Vec<f32>) {
        self.param_pool.push(buf);
    }

    /// Mean fractional epoch across *active* nodes (the paper's per-epoch
    /// x-axes average over workers with unequal shard sizes; crashed
    /// nodes' frozen counters would otherwise stall every epoch-driven
    /// stop condition). With everyone active this is exactly the historic
    /// all-nodes mean.
    pub fn mean_epoch(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (node, &alive) in self.nodes.iter().zip(&self.active) {
            if alive {
                sum += node.epochs();
                n += 1;
            }
        }
        if n == 0 {
            // Whole fleet down: report the frozen all-nodes mean rather
            // than pretending no training ever happened.
            return self.nodes.iter().map(NodeState::epochs).sum::<f64>()
                / self.nodes.len() as f64;
        }
        sum / n as f64
    }

    /// Largest node clock = simulated wall-clock so far.
    pub fn wall_clock(&self) -> f64 {
        self.nodes.iter().map(|n| n.clock).fold(0.0, f64::max)
    }

    /// Books the timing of one completed iteration on node `i`:
    /// advances its clock and cost accumulators.
    pub fn book_iteration(&mut self, i: usize, compute_s: f64, iteration_s: f64) {
        debug_assert!(iteration_s >= compute_s - 1e-12 || iteration_s >= 0.0);
        let node = &mut self.nodes[i];
        node.clock += iteration_s;
        node.comp_time_total += compute_s;
        node.comm_exposed_total += (iteration_s - compute_s).max(0.0);
    }

    /// Serializes the environment's *mutable* state — replicas, optimiser
    /// buffers, samplers, clocks, cost accumulators, RNG streams, and the
    /// global step counter. The immutable parts (topology, network,
    /// datasets, config) are pure data reconstructed from the scenario at
    /// restore time.
    pub fn checkpoint(&self) -> Json {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                Json::obj([
                    ("params", n.model.params().to_json()),
                    ("velocity", n.opt.velocity().to_json()),
                    ("sampler", n.sampler.checkpoint()),
                    ("clock", n.clock.to_json()),
                    ("comp_time_total", n.comp_time_total.to_json()),
                    ("comm_exposed_total", n.comm_exposed_total.to_json()),
                    ("local_steps", n.local_steps.to_json()),
                ])
            })
            .collect();
        let mut doc = self.checkpoint_meta();
        if let Json::Obj(entries) = &mut doc {
            entries.push(("nodes".to_string(), Json::Arr(nodes)));
        }
        doc
    }

    /// The environment checkpoint *without* the per-node array — the
    /// fleet-size-independent remainder (`global_step` and the RNG
    /// streams). The binary fast path serializes this small object
    /// through [`Json`] and streams the node state separately; the v2
    /// writer above appends `nodes` last, and the binary decoder relies
    /// on that ordering to splice the array back in.
    pub(crate) fn checkpoint_meta(&self) -> Json {
        Json::obj([
            ("global_step", self.global_step.to_json()),
            ("rng", rng_to_json(&self.rng)),
            ("node_rngs", Json::Arr(self.node_rngs.iter().map(rng_to_json).collect())),
        ])
    }

    /// Restores state captured by [`Environment::checkpoint`] onto this
    /// (freshly built, same-scenario) environment.
    pub fn restore(&mut self, state: &Json) -> Result<(), JsonError> {
        let nodes = state.field("nodes")?.as_arr()?;
        if nodes.len() != self.nodes.len() {
            return Err(JsonError::schema(format!(
                "checkpoint has {} nodes, environment has {}",
                nodes.len(),
                self.nodes.len()
            )));
        }
        let node_rngs = state.field("node_rngs")?.as_arr()?;
        if node_rngs.len() != self.node_rngs.len() {
            return Err(JsonError::schema("node rng stream count mismatch".into()));
        }
        for (node, saved) in self.nodes.iter_mut().zip(nodes) {
            let params: Vec<f32> = Vec::from_json(saved.field("params")?)?;
            if params.len() != node.model.num_params() {
                return Err(JsonError::schema(format!(
                    "checkpoint has {} parameters, model has {}",
                    params.len(),
                    node.model.num_params()
                )));
            }
            node.model.params_mut().copy_from_slice(&params);
            let velocity: Vec<f32> = Vec::from_json(saved.field("velocity")?)?;
            if velocity.len() != node.opt.velocity().len() {
                return Err(JsonError::schema("optimiser state length mismatch".into()));
            }
            node.opt.velocity_mut().copy_from_slice(&velocity);
            let sampler = BatchSampler::restore(saved.field("sampler")?)?;
            // Reject what the gradient step would otherwise panic on —
            // corrupt checkpoints surface as typed errors, not as
            // out-of-bounds panics mid-run (same convention as
            // `check_node_index`).
            if let Some(&bad) = sampler.indices().iter().find(|&&i| i >= self.workload.train.len())
            {
                return Err(JsonError::schema(format!(
                    "sampler references example {bad}, dataset has {}",
                    self.workload.train.len()
                )));
            }
            node.sampler = sampler;
            node.clock = f64::from_json(saved.field("clock")?)?;
            node.comp_time_total = f64::from_json(saved.field("comp_time_total")?)?;
            node.comm_exposed_total = f64::from_json(saved.field("comm_exposed_total")?)?;
            node.local_steps = u64::from_json(saved.field("local_steps")?)?;
        }
        self.rng = rng_from_json(state.field("rng")?)?;
        self.node_rngs = node_rngs.iter().map(rng_from_json).collect::<Result<_, _>>()?;
        self.global_step = u64::from_json(state.field("global_step")?)?;
        Ok(())
    }
}

/// The shared active-neighbour draw: the classic full-list index when
/// everyone is up (`all_active` — the caller's O(1) fleet-level check),
/// a filtered count/draw/walk otherwise. One implementation serves both
/// the topology and external neighbour lists so the "same RNG stream
/// when all nodes are up" invariant has exactly one home.
fn draw_active(
    nbrs: &[usize],
    active: &[bool],
    all_active: bool,
    rng: &mut StdRng,
) -> Option<usize> {
    if all_active {
        if nbrs.is_empty() {
            return None;
        }
        let k = rng.gen_range(0..nbrs.len());
        return Some(nbrs[k]);
    }
    let degree = nbrs.iter().filter(|&&m| active[m]).count();
    if degree == 0 {
        return None;
    }
    let k = rng.gen_range(0..degree);
    nbrs.iter().copied().filter(|&m| active[m]).nth(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_net::HomogeneousNetwork;
    use rand::RngCore;

    fn tiny_env() -> Environment {
        let workload = Workload::convex_ridge(1);
        let n = 4;
        let topology = Topology::fully_connected(n);
        let network = Box::new(HomogeneousNetwork::paper_default(n));
        let partition = Partition::uniform(&workload.train, n, 7);
        Environment::new(topology, network, workload, partition, TrainConfig::quick_test())
    }

    #[test]
    fn environment_builds_replicas() {
        let env = tiny_env();
        assert_eq!(env.num_nodes(), 4);
        assert_eq!(env.mean_epoch(), 0.0);
        assert_eq!(env.wall_clock(), 0.0);
        // Replicas start from different seeds.
        assert_ne!(env.nodes[0].model.params(), env.nodes[1].model.params());
    }

    #[test]
    fn gradient_step_changes_params_and_returns_compute_time() {
        let mut env = tiny_env();
        let before = env.nodes[0].model.params().to_vec();
        let c = env.gradient_step(0);
        assert!(c > 0.0);
        assert_ne!(env.nodes[0].model.params(), before.as_slice());
        assert_eq!(env.nodes[0].local_steps, 1);
        assert!(env.nodes[0].epochs() > 0.0);
    }

    #[test]
    fn booking_advances_clock_and_costs() {
        let mut env = tiny_env();
        env.book_iteration(0, 0.2, 0.5);
        assert_eq!(env.nodes[0].clock, 0.5);
        assert_eq!(env.nodes[0].comp_time_total, 0.2);
        assert!((env.nodes[0].comm_exposed_total - 0.3).abs() < 1e-12);
        assert_eq!(env.wall_clock(), 0.5);
    }

    #[test]
    fn stop_condition_trips_on_wall_clock() {
        let mut env = tiny_env();
        env.cfg.max_wall_clock_s = 1.0;
        let stop = env.cfg.effective_stop();
        assert!(!stop.satisfied(&env, None));
        env.book_iteration(0, 0.5, 2.0);
        assert!(stop.satisfied(&env, None));
    }

    #[test]
    fn checkpoint_restore_round_trips_mutable_state() {
        let mut env = tiny_env();
        let _ = env.gradient_step(0);
        let _ = env.gradient_step(1);
        env.book_iteration(0, 0.2, 0.5);
        env.global_step = 2;
        let _ = env.node_rng(3).next_u64();
        let state = env.checkpoint();
        let text = state.pretty();

        let mut fresh = tiny_env();
        fresh.restore(&netmax_json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(fresh.global_step, 2);
        assert_eq!(fresh.nodes[0].model.params(), env.nodes[0].model.params());
        assert_eq!(fresh.nodes[0].clock, env.nodes[0].clock);
        assert_eq!(fresh.nodes[1].local_steps, 1);
        // RNG streams resume where the original left off.
        assert_eq!(fresh.node_rng(3).next_u64(), env.node_rng(3).next_u64());
        assert_eq!(fresh.rng.next_u64(), env.rng.next_u64());
        // The next batches drawn match.
        assert_eq!(fresh.nodes[0].sampler.next_batch(), env.nodes[0].sampler.next_batch());
    }

    #[test]
    fn restore_rejects_sampler_indices_outside_the_dataset() {
        // A checkpoint from a 20k-example workload restored onto an
        // environment whose dataset is far smaller must fail with a typed
        // error, not panic out-of-bounds on the next gradient step.
        let mut env = tiny_env();
        let _ = env.gradient_step(0);
        let state = env.checkpoint();
        let text = state.pretty();

        let (train, test) = netmax_ml::datasets::gaussian_mixture(
            netmax_ml::datasets::MixtureSpec {
                num_classes: 10,
                dim: 32,
                train_n: 100,
                test_n: 20,
                mean_scale: 1.0,
                noise: 0.5,
            },
            3,
        );
        let mut small_workload = Workload::convex_ridge(1);
        small_workload.train = std::sync::Arc::new(train);
        small_workload.test = std::sync::Arc::new(test);
        let topology = Topology::fully_connected(4);
        let network = Box::new(HomogeneousNetwork::paper_default(4));
        let partition = Partition::uniform(&small_workload.train, 4, 7);
        let mut small = Environment::new(
            topology,
            network,
            small_workload,
            partition,
            TrainConfig::quick_test(),
        );
        let err = small
            .restore(&netmax_json::Json::parse(&text).unwrap())
            .expect_err("out-of-range sampler indices must be rejected");
        assert!(err.to_string().contains("sampler references example"), "{err}");
    }

    /// The lr schedule must be read *before* the batch draw, identically
    /// in the fused (`gradient_step`) and split (`compute_gradient` +
    /// `apply_gradient`) paths: a milestone at epoch E first applies to
    /// the first step *of* epoch E. The old code read the lr after the
    /// draw, so the step that completed epoch E−1 already decayed — one
    /// step early — and only on some paths.
    #[test]
    fn lr_milestone_applies_first_step_of_new_epoch_on_both_paths() {
        let mut fused = tiny_env();
        let mut split = tiny_env();
        let mut control = tiny_env(); // no milestone
        let b = fused.nodes[0].sampler.batch_size();
        let l = fused.nodes[0].sampler.shard_len();
        let k = 2u64; // decay milestone falls exactly after k draws
        let milestone = (k * b as u64) as f64 / l as f64;
        for env in [&mut fused, &mut split] {
            env.workload.optim.lr_milestones = vec![milestone];
            env.workload.optim.lr_decay = 0.1;
        }

        for step in 1..=k {
            let _ = fused.gradient_step(0);
            let _ = split.compute_gradient(0);
            let g = split.grad(0).to_vec();
            split.apply_gradient(0, &g);
            let _ = control.gradient_step(0);
            // Step k's draw reaches the milestone exactly; read-before-draw
            // means the decay must NOT be charged to it yet.
            assert_eq!(
                fused.nodes[0].model.params(),
                control.nodes[0].model.params(),
                "decay applied early at step {step}"
            );
            assert_eq!(
                fused.nodes[0].model.params(),
                split.nodes[0].model.params(),
                "fused and split paths disagree at step {step}"
            );
        }
        assert!(fused.nodes[0].epochs() >= milestone, "milestone not reached in test setup");

        // Step k+1 opens the post-milestone epoch: the decayed lr kicks in,
        // on both paths identically.
        let _ = fused.gradient_step(0);
        let _ = split.compute_gradient(0);
        let g = split.grad(0).to_vec();
        split.apply_gradient(0, &g);
        let _ = control.gradient_step(0);
        assert_ne!(
            fused.nodes[0].model.params(),
            control.nodes[0].model.params(),
            "decay never applied"
        );
        assert_eq!(
            fused.nodes[0].model.params(),
            split.nodes[0].model.params(),
            "fused and split paths cross the milestone differently"
        );
    }

    #[test]
    fn comm_time_positive_between_distinct_nodes() {
        let env = tiny_env();
        assert!(env.comm_time(0, 1, 0.0) > 0.0);
        assert_eq!(env.comm_time(2, 2, 0.0), 0.0);
    }
}
