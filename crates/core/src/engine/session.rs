//! The step-wise training session: a resumable state machine around the
//! engine.
//!
//! [`Algorithm::run`](super::Algorithm::run) is a convenience blocking
//! call; the real execution surface is [`Session`]. A session owns a
//! borrowed [`Environment`], a boxed [`SessionDriver`] (the
//! algorithm-specific event source), the metric [`Recorder`] (the
//! built-in observer), and a [`StopCondition`]. [`Session::step`]
//! advances exactly one event and
//! reports it as a [`StepEvent`], so callers can
//!
//! * **observe** a run in flight (match on events, or register
//!   [`Observer`]s for callback-style streaming),
//! * **stop** it on any serializable [`StopCondition`] — or imperatively
//!   via [`Session::finish_now`],
//! * **checkpoint** the full mid-run state to JSON and **resume** it later
//!   with the guarantee that *checkpoint-at-step-k then resume* produces a
//!   [`RunReport`] byte-identical to an uninterrupted run.
//!
//! Determinism is the load-bearing property: a checkpoint captures the
//! virtual clocks, the pending event queue (with its FIFO tie-break
//! sequence numbers), every parameter replica and optimiser buffer, every
//! per-node RNG stream, the recorder, and the driver/behavior state.
//! Everything *not* in the checkpoint (topology, datasets, network timing)
//! is pure data reconstructed from the
//! [`Scenario`](super::scenario::Scenario).

use super::checkpoint::{self, CheckpointFormat, CheckpointScratch};
use super::environment::Environment;
use super::recorder::{Recorder, RunReport, Sample};
use super::stop::StopCondition;
use netmax_json::{CodecError, FromJson, Json, JsonError, ToJson};
use netmax_ml::NumericsTier;
use netmax_net::MembershipEvent;
use std::fmt;

/// Schema tag of [`Session::checkpoint`] documents; bump on breaking
/// changes. v2 added the active-membership state (fault-capable
/// sessions); v1 documents ([`SESSION_CHECKPOINT_SCHEMA_V1`]) still
/// restore.
pub const SESSION_CHECKPOINT_SCHEMA: &str = "netmax-core/session-checkpoint/v2";

/// The pre-fault checkpoint schema; still restorable into fault-free
/// scenarios (restoring into a scenario with a non-empty fault plan is
/// rejected — such a plan could only postdate the document).
pub const SESSION_CHECKPOINT_SCHEMA_V1: &str = "netmax-core/session-checkpoint/v1";

/// Typed errors surfaced at session construction or restore — before any
/// training work is done.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// A configuration value is invalid; the message names the field.
    InvalidConfig(String),
    /// A checkpoint document is malformed or inconsistent with the
    /// session being restored.
    BadCheckpoint(String),
    /// A peer access named a node that is out of range or currently down
    /// (crashed per the scenario's fault plan). `fleet` is `Some(size)`
    /// when the index was out of range, `None` when the node exists but
    /// is down. Structured (not a `String`) so the pull path that
    /// constructs it never allocates; the message is rendered lazily by
    /// `Display`.
    NodeUnavailable {
        /// The node index the peer access named.
        node: usize,
        /// `Some(fleet_size)` when `node` was out of range; `None` when
        /// the node exists but is down.
        fleet: Option<usize>,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SessionError::BadCheckpoint(msg) => write!(f, "bad checkpoint: {msg}"),
            SessionError::NodeUnavailable { node, fleet: Some(n) } => {
                write!(f, "node unavailable: node {node} is out of range (fleet has {n})")
            }
            SessionError::NodeUnavailable { node, fleet: None } => {
                write!(f, "node unavailable: node {node} is down")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<JsonError> for SessionError {
    fn from(e: JsonError) -> Self {
        SessionError::BadCheckpoint(e.to_string())
    }
}

impl From<CodecError> for SessionError {
    fn from(e: CodecError) -> Self {
        SessionError::BadCheckpoint(format!("binary codec: {e}"))
    }
}

/// What one [`Session::step`] call did.
#[derive(Debug, Clone)]
pub enum StepEvent {
    /// One asynchronous worker completed one iteration (one global step
    /// `k` of the paper's §IV model).
    GlobalStep {
        /// The worker that completed.
        node: usize,
        /// The peer it pulled from (`None` for a self/communication-free
        /// step, or for exchanges with a central server).
        peer: Option<usize>,
        /// The realised iteration time in simulated seconds.
        iteration_s: f64,
    },
    /// A Network-Monitor collection round fired (Algorithm 1).
    MonitorRound {
        /// Simulated time of the firing.
        time_s: f64,
    },
    /// A round-structured algorithm (Allreduce, Prague, PS-sync) completed
    /// one synchronous round, advancing several global steps at once.
    RoundComplete {
        /// Global steps the round contributed.
        steps: u64,
        /// Simulated wall-clock after the round.
        time_s: f64,
    },
    /// A metric sample was recorded (at the cadence of
    /// [`TrainConfig`](super::config::TrainConfig)).
    Sampled {
        /// The freshly recorded sample.
        sample: Sample,
    },
    /// A node crashed per the scenario's fault plan; it no longer
    /// schedules iterations and the policy layer routes around it.
    NodeDown {
        /// The crashed worker.
        node: usize,
        /// Scheduled crash time (virtual seconds).
        time_s: f64,
    },
    /// A crashed node rejoined, warm-started from a live peer's replica.
    NodeUp {
        /// The rejoining worker.
        node: usize,
        /// Scheduled rejoin time (virtual seconds).
        time_s: f64,
        /// The live peer whose replica seeded the rejoin (`None` when no
        /// other node was alive and the node restarted from its own
        /// stale replica).
        donor: Option<usize>,
    },
    /// The session finished; the report is final. Subsequent `step` calls
    /// keep returning this event.
    Finished {
        /// The complete run report.
        report: RunReport,
    },
}

/// Callback-style consumer of session progress. All methods default to
/// no-ops; implement the ones you need and register with
/// [`Session::observe`].
pub trait Observer {
    /// Called after every completed global step.
    fn on_step(&mut self, env: &Environment, node: usize, peer: Option<usize>, iteration_s: f64) {
        let _ = (env, node, peer, iteration_s);
    }

    /// Called after every synchronous round of a round-structured driver.
    fn on_round(&mut self, env: &Environment, steps: u64, time_s: f64) {
        let _ = (env, steps, time_s);
    }

    /// Called after every Network-Monitor firing.
    fn on_monitor(&mut self, env: &Environment, time_s: f64) {
        let _ = (env, time_s);
    }

    /// Called after every recorded metric sample (including the final one
    /// taken when the session finishes).
    fn on_sample(&mut self, env: &Environment, sample: &Sample) {
        let _ = (env, sample);
    }

    /// Called after every membership transition (node crash or rejoin).
    fn on_membership(&mut self, env: &Environment, node: usize, active: bool, time_s: f64) {
        let _ = (env, node, active, time_s);
    }
}

/// What one driver advance produced (the driver-side analogue of
/// [`StepEvent`]; the session layers sampling, stop conditions, and
/// finishing on top).
#[derive(Debug, Clone)]
pub enum DriverEvent {
    /// One worker completed one iteration.
    Step {
        /// The worker that completed.
        node: usize,
        /// The peer it pulled from, if any.
        peer: Option<usize>,
        /// The realised iteration time in simulated seconds.
        iteration_s: f64,
    },
    /// A Network-Monitor round fired.
    Monitor {
        /// Simulated time of the firing.
        time_s: f64,
    },
    /// One synchronous round completed.
    Round {
        /// Global steps the round contributed.
        steps: u64,
        /// Simulated wall-clock after the round.
        time_s: f64,
    },
    /// The driver has no further events (never the case for the training
    /// drivers in this workspace, which schedule forever; the session
    /// normally ends via its [`StopCondition`]).
    Exhausted,
}

/// An algorithm's event source: the pluggable half of a [`Session`].
///
/// A driver owns the algorithm-specific scheduling state (event queues,
/// round structure, behavior state) and advances the [`Environment`] one
/// event at a time. Drivers must be *suspendable*: `advance` may never be
/// called again after any event, and [`SessionDriver::checkpoint_state`] /
/// [`SessionDriver::restore_state`] must round-trip all internal state so
/// a restored driver continues byte-identically.
pub trait SessionDriver {
    /// Algorithm identifier used in reports ("netmax", "ad-psgd", …).
    fn name(&self) -> &str;

    /// Validates configuration against the environment; called once at
    /// [`Session::new`] so a bad spec fails before any work is done.
    fn validate(&self, env: &Environment) -> Result<(), SessionError> {
        let _ = env;
        Ok(())
    }

    /// Advances the simulation by exactly one event. The first call must
    /// lazily perform any start-up work (initial scheduling, warm-up
    /// probes).
    fn advance(&mut self, env: &mut Environment) -> DriverEvent;

    /// Serializes the driver's internal state (event queue, pending
    /// scheduling decisions, behavior state). `Json::Null` when stateless.
    fn checkpoint_state(&self) -> Json {
        Json::Null
    }

    /// Restores internal state captured by
    /// [`SessionDriver::checkpoint_state`], rebuilding any derived state
    /// from `env`. After this call the driver must behave as if it had
    /// advanced to the checkpointed event itself.
    fn restore_state(&mut self, env: &mut Environment, state: &Json) -> Result<(), JsonError> {
        let _ = (env, state);
        Ok(())
    }

    /// Called by the session after it applied a membership transition
    /// (the environment's active flags are already updated, and a
    /// rejoining node is already warm-started). Event-driven drivers use
    /// this to re-admit a rejoined node into their schedule; crashed
    /// nodes' stale events are expected to be dropped lazily. Default:
    /// no-op (round drivers re-derive membership every round).
    fn on_membership_change(&mut self, env: &mut Environment, node: usize, active: bool) {
        let _ = (env, node, active);
    }
}

/// A resumable, observable, step-wise training run. See the module docs.
pub struct Session<'a> {
    env: &'a mut Environment,
    driver: Box<dyn SessionDriver + 'a>,
    observers: Vec<&'a mut dyn Observer>,
    recorder: Recorder,
    stop: StopCondition,
    algorithm: String,
    /// A sample is due before the next driver advance (set when the
    /// recording cadence hits after a step; delivered as the next event).
    sample_due: bool,
    /// Most recent recorded sample — the input to metric stop conditions.
    latest: Option<Sample>,
    /// Optional *real* wall-clock deadline: once it passes, the very next
    /// [`Session::step`] finishes the session (truthful partial report)
    /// without another driver advance, bounding the overshoot to at most
    /// the one event already in flight when the deadline expired.
    /// Transient — never checkpointed (a resumed session gets a fresh
    /// budget from its caller).
    // audit: allow(determinism-time) -- the deadline is the one sanctioned real-clock escape hatch; it never feeds simulated state
    deadline: Option<std::time::Instant>,
    /// The fault plan's crash/rejoin schedule, sorted by virtual time
    /// (pure data, derived from the environment at construction).
    membership: Vec<MembershipEvent>,
    /// Index of the next unapplied membership event.
    membership_next: usize,
    finished: Option<RunReport>,
}

impl<'a> Session<'a> {
    /// Creates a session over `env` driven by `driver`, stopping per the
    /// environment's
    /// [`TrainConfig::effective_stop`](super::config::TrainConfig::effective_stop).
    /// Fails with a typed [`SessionError`] — before any training work —
    /// if the config or driver parameters are invalid.
    pub fn new(
        env: &'a mut Environment,
        driver: Box<dyn SessionDriver + 'a>,
    ) -> Result<Self, SessionError> {
        env.cfg.validate()?;
        let stop = env.cfg.effective_stop();
        stop.validate()?;
        driver.validate(env)?;
        let algorithm = driver.name().to_string();
        let membership = env.fault_plan().membership_events();
        Ok(Self {
            env,
            driver,
            observers: Vec::new(),
            recorder: Recorder::new(),
            stop,
            algorithm,
            sample_due: false,
            latest: None,
            deadline: None,
            membership,
            membership_next: 0,
            finished: None,
        })
    }

    /// Sets a real wall-clock deadline: after `at`, the next
    /// [`Session::step`] (and therefore [`Session::run`]) finishes the
    /// session instead of advancing the driver. A round-granular driver
    /// can thus overshoot by at most one in-flight event, never by a
    /// whole monitor round of further work. **Breaks cross-run
    /// determinism** — the cut point depends on machine speed.
    // audit: allow(determinism-time) -- deadline entry point; callers opt into real-time cuts explicitly
    pub fn set_deadline(&mut self, at: std::time::Instant) {
        self.deadline = Some(at);
    }

    /// Replaces the stop condition (validated).
    pub fn set_stop(&mut self, stop: StopCondition) -> Result<(), SessionError> {
        stop.validate()?;
        self.stop = stop;
        Ok(())
    }

    /// The active stop condition.
    pub fn stop_condition(&self) -> &StopCondition {
        &self.stop
    }

    /// Registers an observer for callback-style progress streaming.
    pub fn observe(&mut self, observer: &'a mut dyn Observer) {
        self.observers.push(observer);
    }

    /// The algorithm identifier the final report will carry.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Read access to the simulation state.
    pub fn env(&self) -> &Environment {
        self.env
    }

    /// `true` once the session has produced its final report.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The final report, once finished.
    pub fn report(&self) -> Option<&RunReport> {
        self.finished.as_ref()
    }

    /// Advances the session by exactly one event.
    ///
    /// Event order mirrors the classic blocking loop exactly: after a
    /// `GlobalStep`/`RoundComplete` that hits the recording cadence the
    /// next call returns `Sampled` (the environment does not change in
    /// between); the stop condition is evaluated before each driver
    /// advance; and finishing forces one last fully evaluated sample into
    /// the report.
    pub fn step(&mut self) -> StepEvent {
        if let Some(report) = &self.finished {
            return StepEvent::Finished { report: report.clone() };
        }
        if self.sample_due {
            self.sample_due = false;
            let sample = self.recorder.record_now(self.env);
            for obs in &mut self.observers {
                obs.on_sample(self.env, &sample);
            }
            self.latest = Some(sample.clone());
            return StepEvent::Sampled { sample };
        }
        // Membership transitions fire once the virtual clock has reached
        // their scheduled time — one transition per step, before the next
        // driver advance, so drivers always observe a consistent
        // active-set.
        if self
            .membership
            .get(self.membership_next)
            .is_some_and(|ev| ev.time_s <= self.env.wall_clock())
        {
            return self.apply_membership();
        }
        // audit: allow(determinism-time) -- the only real-clock read in the engine; compares against the caller-set deadline
        if self.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            return self.finish_event();
        }
        if self.stop.satisfied(self.env, self.latest.as_ref()) {
            return self.finish_event();
        }
        match self.driver.advance(self.env) {
            DriverEvent::Step { node, peer, iteration_s } => {
                for obs in &mut self.observers {
                    obs.on_step(self.env, node, peer, iteration_s);
                }
                self.sample_due = self.recorder.due(self.env);
                StepEvent::GlobalStep { node, peer, iteration_s }
            }
            DriverEvent::Round { steps, time_s } => {
                for obs in &mut self.observers {
                    obs.on_round(self.env, steps, time_s);
                }
                self.sample_due = self.recorder.due(self.env);
                StepEvent::RoundComplete { steps, time_s }
            }
            DriverEvent::Monitor { time_s } => {
                for obs in &mut self.observers {
                    obs.on_monitor(self.env, time_s);
                }
                StepEvent::MonitorRound { time_s }
            }
            // An exhausted driver with membership transitions still
            // pending is a fleet-wide outage, not the end of training:
            // the simulation idles until the next scheduled event (a
            // rejoin advances the clock past the gap and the driver
            // re-admits the node). Only a drained schedule finishes.
            DriverEvent::Exhausted if self.membership_next < self.membership.len() => {
                self.apply_membership()
            }
            DriverEvent::Exhausted => self.finish_event(),
        }
    }

    /// Runs the session to completion and returns the report.
    pub fn run(&mut self) -> RunReport {
        loop {
            if let StepEvent::Finished { report } = self.step() {
                return report;
            }
        }
    }

    /// Finishes immediately (e.g. on an external wall-clock deadline),
    /// forcing the final sample and report exactly as a condition-driven
    /// stop would.
    pub fn finish_now(&mut self) -> RunReport {
        self.finish_report()
    }

    /// Applies the next pending membership transition: flips the active
    /// flag, warm-starts a rejoining node from a live peer, and notifies
    /// the driver and observers.
    fn apply_membership(&mut self) -> StepEvent {
        let ev = self.membership[self.membership_next];
        self.membership_next += 1;
        self.env.set_active(ev.node, ev.up);
        let donor = if ev.up { self.env.warm_start(ev.node, ev.time_s) } else { None };
        self.driver.on_membership_change(self.env, ev.node, ev.up);
        for obs in &mut self.observers {
            obs.on_membership(self.env, ev.node, ev.up, ev.time_s);
        }
        if ev.up {
            StepEvent::NodeUp { node: ev.node, time_s: ev.time_s, donor }
        } else {
            StepEvent::NodeDown { node: ev.node, time_s: ev.time_s }
        }
    }

    fn finish_event(&mut self) -> StepEvent {
        StepEvent::Finished { report: self.finish_report() }
    }

    /// Forces the final sample and report. Idempotent: the first call's
    /// report is cached and later calls return it unchanged.
    fn finish_report(&mut self) -> RunReport {
        if let Some(report) = &self.finished {
            return report.clone();
        }
        let report = self.recorder.finish(self.env, &self.algorithm);
        if let Some(sample) = report.samples.last() {
            for obs in &mut self.observers {
                obs.on_sample(self.env, sample);
            }
        }
        self.finished = Some(report.clone());
        report
    }

    /// Serializes the complete mid-run state as a versioned JSON document.
    ///
    /// The checkpoint holds only *mutable* state — everything derivable
    /// from the scenario (datasets, topology, network timing, config) is
    /// reconstructed by building a fresh session and calling
    /// [`Session::restore`].
    pub fn checkpoint(&self) -> Json {
        self.checkpoint_with_env(self.env.checkpoint())
    }

    /// The single home of the v2 field order: builds the session document
    /// around a caller-supplied `env` value, so the full JSON checkpoint
    /// and the binary fast path's `meta` section can never drift apart.
    fn checkpoint_with_env(&self, env_state: Json) -> Json {
        Json::obj([
            ("schema", Json::Str(SESSION_CHECKPOINT_SCHEMA.into())),
            ("algorithm", self.algorithm.to_json()),
            ("tier", self.env.cfg.tier.to_json()),
            ("stop", self.stop.to_json()),
            ("env", env_state),
            ("recorder", self.recorder.checkpoint()),
            ("driver", self.driver.checkpoint_state()),
            ("sample_due", self.sample_due.to_json()),
            ("latest", self.latest.to_json()),
            ("active", self.env.active_flags().to_json()),
            ("membership_next", self.membership_next.to_json()),
            (
                "finished",
                match &self.finished {
                    Some(r) => r.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// The checkpoint document minus the per-node array (`env.nodes`) —
    /// the fleet-size-independent `meta` section of a binary snapshot.
    fn checkpoint_meta(&self) -> Json {
        self.checkpoint_with_env(self.env.checkpoint_meta())
    }

    /// Encodes a full binary (`session-checkpoint/v3`) snapshot into
    /// `out` (cleared first). Node state streams straight from the
    /// environment through `scratch`'s reusable buffers — zero
    /// steady-state allocations on the per-node path — and the scratch's
    /// delta chain is (re)seeded at this snapshot. The bytes are
    /// identical to [`checkpoint::encode_session_v3`] applied to
    /// [`Session::checkpoint`].
    pub fn checkpoint_binary(
        &self,
        scratch: &mut CheckpointScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), SessionError> {
        let meta = self.checkpoint_meta();
        scratch.encode_full(&meta, self.env, out).map_err(SessionError::from)
    }

    /// Encodes an incremental (`session-delta/v1`) snapshot into `out`
    /// (cleared first): only nodes whose encoded bytes changed since the
    /// last snapshot taken through `scratch` are included. Requires a
    /// prior [`Session::checkpoint_binary`] on the same scratch to seed
    /// the chain; [`checkpoint::reconstruct_chain`] replays base + deltas
    /// into bytes bit-identical to a fresh full snapshot.
    pub fn checkpoint_delta(
        &self,
        scratch: &mut CheckpointScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), SessionError> {
        if !scratch.has_base(self.env.num_nodes()) {
            return Err(SessionError::BadCheckpoint(
                "delta checkpoint requires a prior full binary snapshot through the same \
                 scratch (same fleet size)"
                    .into(),
            ));
        }
        let meta = self.checkpoint_meta();
        scratch.encode_delta(&meta, self.env, out).map_err(SessionError::from)
    }

    /// Serializes a checkpoint in the requested on-disk format: pretty
    /// v2 JSON text or a v3 binary container (both carry the same
    /// logical document).
    pub fn checkpoint_bytes(
        &self,
        format: CheckpointFormat,
        scratch: &mut CheckpointScratch,
    ) -> Result<Vec<u8>, SessionError> {
        match format {
            CheckpointFormat::Json => Ok(self.checkpoint().pretty().into_bytes()),
            CheckpointFormat::Binary => {
                let mut out = Vec::new();
                self.checkpoint_binary(scratch, &mut out)?;
                Ok(out)
            }
        }
    }

    /// Restores a session from checkpoint bytes in either format,
    /// sniffing the binary magic: v3 containers decode to the wrapped v2
    /// document, anything else must be UTF-8 JSON text (v1 or v2). All
    /// validation happens in [`Session::restore`] regardless of format.
    pub fn restore_bytes(
        env: &'a mut Environment,
        driver: Box<dyn SessionDriver + 'a>,
        bytes: &[u8],
    ) -> Result<Self, SessionError> {
        if netmax_json::codec::is_binary(bytes) {
            let doc = checkpoint::decode_session_v3(bytes)?;
            Session::restore(env, driver, &doc)
        } else {
            let text = std::str::from_utf8(bytes).map_err(|_| {
                SessionError::BadCheckpoint(
                    "checkpoint bytes are neither a binary container nor UTF-8 JSON".into(),
                )
            })?;
            let doc = Json::parse(text)?;
            Session::restore(env, driver, &doc)
        }
    }

    /// Rebuilds a session from a [`Session::checkpoint`] document.
    ///
    /// `env` and `driver` must be *freshly constructed* from the same
    /// scenario and algorithm configuration that produced the checkpoint
    /// (the checkpoint's `algorithm` tag is verified). The restored
    /// session continues byte-identically to the one that was
    /// checkpointed.
    pub fn restore(
        env: &'a mut Environment,
        driver: Box<dyn SessionDriver + 'a>,
        checkpoint: &Json,
    ) -> Result<Self, SessionError> {
        let schema = checkpoint.field("schema")?.as_str()?;
        let v1 = schema == SESSION_CHECKPOINT_SCHEMA_V1;
        if schema != SESSION_CHECKPOINT_SCHEMA && !v1 {
            return Err(SessionError::BadCheckpoint(format!(
                "unsupported checkpoint schema `{schema}` (expected `{SESSION_CHECKPOINT_SCHEMA}` \
                 or `{SESSION_CHECKPOINT_SCHEMA_V1}`)"
            )));
        }
        let algorithm = String::from_json(checkpoint.field("algorithm")?)?;
        if algorithm != driver.name() {
            return Err(SessionError::BadCheckpoint(format!(
                "checkpoint is for algorithm `{algorithm}`, driver is `{}`",
                driver.name()
            )));
        }
        // A resume must never silently cross numerics tiers: the restored
        // trajectory would be neither the strict nor the fast one.
        // Pre-tier documents (no `tier` key) were all strict.
        let ckpt_tier = match checkpoint.get("tier") {
            None | Some(Json::Null) => NumericsTier::Strict,
            Some(t) => NumericsTier::from_json(t)?,
        };
        if ckpt_tier != env.cfg.tier {
            return Err(SessionError::BadCheckpoint(format!(
                "checkpoint was recorded under the `{}` numerics tier, session is configured \
                 for `{}`",
                ckpt_tier.tier_name(),
                env.cfg.tier.tier_name()
            )));
        }
        let mut session = Session::new(env, driver)?;
        let stop = StopCondition::from_json(checkpoint.field("stop")?)?;
        stop.validate()?;
        session.stop = stop;
        session.env.restore(checkpoint.field("env")?)?;
        // Membership state: v2 documents carry it explicitly. v1
        // documents predate fault-capable sessions — restoring one into
        // a *faulted* scenario is rejected outright (a flag-only replay
        // could not purge the restored driver queue of a crashed node's
        // in-flight events, re-creating the duplicated-chain bug the
        // eager purge exists to prevent); with an empty plan there is
        // nothing to reconstruct.
        if v1 {
            if !session.env.fault_plan().is_empty() {
                return Err(SessionError::BadCheckpoint(
                    "v1 checkpoints predate fault-capable sessions and cannot be restored \
                     into a scenario with a non-empty fault plan"
                        .into(),
                ));
            }
        } else {
            let active: Vec<bool> = Vec::from_json(checkpoint.field("active")?)?;
            if active.len() != session.env.num_nodes() {
                return Err(SessionError::BadCheckpoint(format!(
                    "checkpoint has {} membership flags, environment has {} nodes",
                    active.len(),
                    session.env.num_nodes()
                )));
            }
            for (i, a) in active.into_iter().enumerate() {
                session.env.set_active(i, a);
            }
            let next = usize::from_json(checkpoint.field("membership_next")?)?;
            if next > session.membership.len() {
                return Err(SessionError::BadCheckpoint(format!(
                    "checkpoint applied {next} membership events, plan has {}",
                    session.membership.len()
                )));
            }
            session.membership_next = next;
        }
        session.recorder.restore(checkpoint.field("recorder")?)?;
        session
            .driver
            .restore_state(session.env, checkpoint.field("driver")?)?;
        session.sample_due = bool::from_json(checkpoint.field("sample_due")?)?;
        session.latest = Option::from_json(checkpoint.field("latest")?)?;
        session.finished = match checkpoint.field("finished")? {
            Json::Null => None,
            other => Some(RunReport::from_json(other)?),
        };
        Ok(session)
    }
}

/// Serializes a `netmax_linalg::Matrix` for checkpoints (module-internal
/// helper shared by the monitor-bearing behaviors; the orphan rule keeps
/// this out of `netmax-linalg` itself).
pub fn matrix_to_json(m: &netmax_linalg::Matrix) -> Json {
    Json::obj([
        ("rows", m.rows().to_json()),
        ("cols", m.cols().to_json()),
        ("data", m.as_slice().to_json()),
    ])
}

/// Inverse of [`matrix_to_json`].
pub fn matrix_from_json(v: &Json) -> Result<netmax_linalg::Matrix, JsonError> {
    let rows = usize::from_json(v.field("rows")?)?;
    let cols = usize::from_json(v.field("cols")?)?;
    let data: Vec<f64> = Vec::from_json(v.field("data")?)?;
    if data.len() != rows * cols {
        return Err(JsonError::schema(format!(
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        )));
    }
    let mut m = netmax_linalg::Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            m[(r, c)] = data[r * cols + c];
        }
    }
    Ok(m)
}

/// Serializes an RNG stream's raw state.
pub(crate) fn rng_to_json(rng: &rand::rngs::StdRng) -> Json {
    rng.state().to_vec().to_json()
}

/// Inverse of [`rng_to_json`].
pub(crate) fn rng_from_json(v: &Json) -> Result<rand::rngs::StdRng, JsonError> {
    let words: Vec<u64> = Vec::from_json(v)?;
    let state: [u64; 4] = words
        .try_into()
        .map_err(|_| JsonError::schema("rng state must have 4 words".into()))?;
    // The all-zero state is outside xoshiro's period (and can never be
    // produced by a live generator); surface it as a schema error rather
    // than letting the shim's assert abort the process.
    if state.iter().all(|&w| w == 0) {
        return Err(JsonError::schema("rng state must not be all-zero".into()));
    }
    Ok(rand::rngs::StdRng::from_state(state))
}
