//! Binary checkpoint fast path: `session-checkpoint/v3` containers and
//! node-granular incremental deltas.
//!
//! A v3 document is a [`netmax_json::codec`] container
//! (`NMXB` magic + schema tag) **wrapping the v2 logical document**: a
//! `meta` section holding every v2 field except `env.nodes`
//! (generic-value-encoded), and a `nodes` section holding one
//! length-prefixed blob per node. Decoding a v3 document
//! ([`decode_session_v3`]) yields exactly the v2 [`Json`] that
//! [`Session::checkpoint`](super::Session::checkpoint) would have
//! produced, so [`Session::restore`](super::Session::restore) — with all
//! its schema/tier/membership validation — is the single restore path
//! for every format.
//!
//! Two encoders produce v3 bytes, provably identical:
//!
//! * [`encode_session_v3`] transcodes an existing v2 `Json` document
//!   (what `netmax-bench` uses on its suspended-cell documents), and
//! * the [`CheckpointScratch`] fast path streams node state straight
//!   from the [`Environment`] through the codec's typed writers —
//!   no per-node `Json`, no per-node allocation once the scratch
//!   buffers are warm.
//!
//! Incremental snapshots (`session-delta/v1`) re-serialize only the
//! nodes whose encoded bytes changed since the previous snapshot taken
//! through the same scratch. Each delta records FNV-1a fingerprints of
//! the chain state before and after, and [`reconstruct_chain`] replays
//! `base + deltas` into bytes **bit-identical** to a full v3 snapshot
//! taken at the same point.

use super::environment::{Environment, NodeState};
use netmax_json::{codec, CodecError, Json};

/// Schema tag of binary full-session checkpoint containers. The wrapped
/// content is the v2 logical document.
pub const SESSION_CHECKPOINT_SCHEMA_V3: &str = "netmax-core/session-checkpoint/v3";

/// Schema tag of binary incremental (delta) checkpoint containers.
pub const SESSION_DELTA_SCHEMA: &str = "netmax-core/session-delta/v1";

/// The on-disk form a session checkpoint is written in. Both formats
/// carry the same logical document; JSON stays the debug/interop form,
/// binary is the compact fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFormat {
    /// Pretty-printed `session-checkpoint/v2` JSON text.
    Json,
    /// `session-checkpoint/v3` binary container.
    Binary,
}

impl CheckpointFormat {
    /// The CLI name (`json` / `binary`).
    pub fn name(self) -> &'static str {
        match self {
            CheckpointFormat::Json => "json",
            CheckpointFormat::Binary => "binary",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "json" => Some(CheckpointFormat::Json),
            "binary" => Some(CheckpointFormat::Binary),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Byte-level helpers (panic-free, no indexing).
// ---------------------------------------------------------------------

fn split_prefix<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    let (head, tail) = bytes.split_at_checked(n).ok_or(CodecError::Truncated)?;
    *bytes = tail;
    Ok(head)
}

fn read_u32(bytes: &mut &[u8]) -> Result<u32, CodecError> {
    let b: [u8; 4] = split_prefix(bytes, 4)?.try_into().map_err(|_| CodecError::Truncated)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(bytes: &mut &[u8]) -> Result<u64, CodecError> {
    let b: [u8; 8] = split_prefix(bytes, 8)?.try_into().map_err(|_| CodecError::Truncated)?;
    Ok(u64::from_le_bytes(b))
}

fn push_u32(out: &mut Vec<u8>, v: usize) -> Result<(), CodecError> {
    let v = u32::try_from(v).map_err(|_| CodecError::Length)?;
    out.extend_from_slice(&v.to_le_bytes());
    Ok(())
}

fn push_u64(out: &mut Vec<u8>, v: usize) -> Result<(), CodecError> {
    let v = u64::try_from(v).map_err(|_| CodecError::Length)?;
    out.extend_from_slice(&v.to_le_bytes());
    Ok(())
}

/// FNV-1a 64 over the node blobs (length-framed, so blob boundaries are
/// part of the digest). Chain links verify against this before a delta
/// applies — a delta spliced onto the wrong base is a typed error, not
/// silent corruption.
fn fingerprint<'a>(blobs: impl Iterator<Item = &'a [u8]>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for blob in blobs {
        for b in (blob.len() as u64).to_le_bytes() {
            eat(b);
        }
        for b in blob {
            eat(*b);
        }
    }
    h
}

/// Assembles a `nodes` section payload: element count, then one
/// length-prefixed blob per node. Shared by both encoders and by
/// [`reconstruct_chain`], so every path frames nodes identically.
fn write_nodes_payload<'a>(
    out: &mut Vec<u8>,
    count: usize,
    blobs: impl Iterator<Item = &'a [u8]>,
) -> Result<(), CodecError> {
    push_u32(out, count)?;
    for blob in blobs {
        push_u64(out, blob.len())?;
        out.extend_from_slice(blob);
    }
    Ok(())
}

/// Splits a `nodes` section payload back into per-node blob views.
fn split_nodes_payload(mut payload: &[u8]) -> Result<Vec<&[u8]>, CodecError> {
    let count = read_u32(&mut payload)? as usize;
    if count > payload.len() {
        return Err(CodecError::Length);
    }
    let mut blobs = Vec::with_capacity(count);
    for _ in 0..count {
        let len = read_u64(&mut payload)?;
        let len = usize::try_from(len).map_err(|_| CodecError::Length)?;
        blobs.push(split_prefix(&mut payload, len)?);
    }
    if !payload.is_empty() {
        return Err(CodecError::Trailing);
    }
    Ok(blobs)
}

// ---------------------------------------------------------------------
// Node encoding (the fast direct-from-environment path).
// ---------------------------------------------------------------------

/// Streams one node's checkpoint state in the binary codec's wire form —
/// byte-identical to `codec::encode_value` on the node object that
/// [`Environment::checkpoint`] builds, but straight from the typed state.
fn encode_node_binary(node: &NodeState, out: &mut Vec<u8>) -> Result<(), CodecError> {
    codec::write_obj_header(out, 7)?;
    codec::write_key(out, "params")?;
    codec::write_f32_slice(out, node.model.params())?;
    codec::write_key(out, "velocity")?;
    codec::write_f32_slice(out, node.opt.velocity())?;
    codec::write_key(out, "sampler")?;
    node.sampler.encode_checkpoint_into(out)?;
    codec::write_key(out, "clock")?;
    codec::write_f64_json(out, node.clock);
    codec::write_key(out, "comp_time_total")?;
    codec::write_f64_json(out, node.comp_time_total);
    codec::write_key(out, "comm_exposed_total")?;
    codec::write_f64_json(out, node.comm_exposed_total);
    codec::write_key(out, "local_steps")?;
    codec::write_int(out, i128::from(node.local_steps));
    Ok(())
}

// ---------------------------------------------------------------------
// The reusable scratch.
// ---------------------------------------------------------------------

/// Reusable buffers for periodic binary snapshots.
///
/// The per-node encode path allocates nothing once the buffers are warm:
/// each node's blob is rebuilt in place (capacity retained across
/// snapshots), the section payloads reuse their buffers, and emitting a
/// snapshot swaps the current blobs into the delta base instead of
/// copying. Only the small `meta` document (recorder samples, driver
/// state) still passes through `Json` — its cost is bounded per
/// snapshot, not proportional to fleet or model size.
#[derive(Debug, Default)]
pub struct CheckpointScratch {
    /// Per-node blobs of the snapshot being built.
    cur: Vec<Vec<u8>>,
    /// Per-node blobs of the last emitted snapshot — the state deltas
    /// diff against. Empty until a full binary snapshot seeds the chain.
    base: Vec<Vec<u8>>,
    /// Encoded `meta` section.
    meta: Vec<u8>,
    /// Assembled `nodes` (or delta `nodes`) section payload.
    payload: Vec<u8>,
}

impl CheckpointScratch {
    /// A scratch with no buffers warmed and no delta base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a delta can be emitted (a prior full binary snapshot of a
    /// same-sized fleet seeded the chain).
    pub fn has_base(&self, num_nodes: usize) -> bool {
        !self.base.is_empty() && self.base.len() == num_nodes
    }

    /// Drops the delta base, ending the current chain. The next binary
    /// snapshot starts a fresh one.
    pub fn reset_chain(&mut self) {
        self.base.clear();
    }

    /// Rebuilds every node blob in `cur` from the environment, reusing
    /// buffer capacity. Zero allocations in steady state (same fleet,
    /// same model shapes, warm buffers).
    fn encode_nodes(&mut self, env: &Environment) -> Result<(), CodecError> {
        if self.cur.len() != env.nodes.len() {
            self.cur.resize_with(env.nodes.len(), Vec::new);
        }
        for (buf, node) in self.cur.iter_mut().zip(env.nodes.iter()) {
            buf.clear();
            encode_node_binary(node, buf)?;
        }
        Ok(())
    }

    /// Encodes a full v3 snapshot into `out` (cleared first) and seeds /
    /// advances the delta chain state.
    ///
    /// Building block behind
    /// [`Session::checkpoint_binary`](super::Session::checkpoint_binary)
    /// (which supplies the real `meta` document); public so harnesses can
    /// drive the node-encoding path with a fixed meta — the
    /// counting-allocator test proves this call allocates nothing once
    /// the buffers are warm.
    pub fn encode_full(
        &mut self,
        meta: &Json,
        env: &Environment,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        self.meta.clear();
        codec::encode_value(&mut self.meta, meta)?;
        self.encode_nodes(env)?;
        self.payload.clear();
        let count = self.cur.len();
        {
            let blobs = self.cur.iter().map(|b| b.as_slice());
            write_nodes_payload(&mut self.payload, count, blobs)?;
        }
        out.clear();
        codec::write_document(
            out,
            SESSION_CHECKPOINT_SCHEMA_V3,
            &[("meta", &self.meta), ("nodes", &self.payload)],
        )?;
        std::mem::swap(&mut self.base, &mut self.cur);
        Ok(())
    }

    /// Encodes a delta snapshot into `out` (cleared first): only nodes
    /// whose encoded bytes differ from the chain state are included. The
    /// chain state advances to this snapshot. Building block behind
    /// [`Session::checkpoint_delta`](super::Session::checkpoint_delta).
    pub fn encode_delta(
        &mut self,
        meta: &Json,
        env: &Environment,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if !self.has_base(env.nodes.len()) {
            return Err(CodecError::MissingSection("delta base".to_string()));
        }
        self.meta.clear();
        codec::encode_value(&mut self.meta, meta)?;
        self.encode_nodes(env)?;
        let parent = fingerprint(self.base.iter().map(|b| b.as_slice()));
        let result = fingerprint(self.cur.iter().map(|b| b.as_slice()));
        self.payload.clear();
        let changed =
            self.base.iter().zip(self.cur.iter()).filter(|(b, c)| b != c).count();
        push_u32(&mut self.payload, changed)?;
        for (i, (_, cur)) in self
            .base
            .iter()
            .zip(self.cur.iter())
            .enumerate()
            .filter(|(_, (b, c))| b != c)
        {
            push_u32(&mut self.payload, i)?;
            push_u64(&mut self.payload, cur.len())?;
            self.payload.extend_from_slice(cur);
        }
        out.clear();
        codec::write_document(
            out,
            SESSION_DELTA_SCHEMA,
            &[
                ("meta", &self.meta),
                ("parent", &parent.to_le_bytes()),
                ("result", &result.to_le_bytes()),
                ("nodes", &self.payload),
            ],
        )?;
        std::mem::swap(&mut self.base, &mut self.cur);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Json-level transcoding (the bench / interop path).
// ---------------------------------------------------------------------

/// Splits a v2 session document into `(meta, nodes)`: the document with
/// `env.nodes` removed, and the node array itself.
fn split_v2(doc: &Json) -> Result<(Json, &[Json]), CodecError> {
    let bad = |msg: &str| CodecError::Schema(msg.to_string(), "session-checkpoint/v2".to_string());
    let schema = doc.field("schema").ok().and_then(|s| s.as_str().ok()).unwrap_or("?");
    if schema != super::session::SESSION_CHECKPOINT_SCHEMA {
        return Err(CodecError::Schema(
            schema.to_string(),
            super::session::SESSION_CHECKPOINT_SCHEMA.to_string(),
        ));
    }
    let Json::Obj(entries) = doc else {
        return Err(bad("non-object session document"));
    };
    let mut nodes: Option<&[Json]> = None;
    let mut meta_entries = Vec::with_capacity(entries.len());
    for (key, val) in entries {
        if key == "env" {
            let Json::Obj(env_entries) = val else {
                return Err(bad("non-object env state"));
            };
            let mut env_meta = Vec::with_capacity(env_entries.len());
            for (ek, ev) in env_entries {
                if ek == "nodes" {
                    let Json::Arr(items) = ev else {
                        return Err(bad("env.nodes is not an array"));
                    };
                    nodes = Some(items.as_slice());
                } else {
                    env_meta.push((ek.clone(), ev.clone()));
                }
            }
            meta_entries.push((key.clone(), Json::Obj(env_meta)));
        } else {
            meta_entries.push((key.clone(), val.clone()));
        }
    }
    let nodes = nodes.ok_or_else(|| bad("session document has no env.nodes"))?;
    Ok((Json::Obj(meta_entries), nodes))
}

/// Transcodes a `session-checkpoint/v2` [`Json`] document into v3 binary
/// bytes. Byte-identical to the [`CheckpointScratch`] fast path on the
/// session that produced the document (asserted in tests).
pub fn encode_session_v3(doc: &Json) -> Result<Vec<u8>, CodecError> {
    let (meta_doc, nodes) = split_v2(doc)?;
    let mut meta = Vec::new();
    codec::encode_value(&mut meta, &meta_doc)?;
    let mut blobs: Vec<Vec<u8>> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let mut blob = Vec::new();
        codec::encode_value(&mut blob, node)?;
        blobs.push(blob);
    }
    let mut payload = Vec::new();
    write_nodes_payload(&mut payload, blobs.len(), blobs.iter().map(|b| b.as_slice()))?;
    let mut out = Vec::new();
    codec::write_document(
        &mut out,
        SESSION_CHECKPOINT_SCHEMA_V3,
        &[("meta", &meta), ("nodes", &payload)],
    )?;
    Ok(out)
}

/// Decodes v3 binary bytes back into the wrapped v2 logical [`Json`]
/// document (node objects spliced back into `env.nodes`). Never panics;
/// all failures are typed.
pub fn decode_session_v3(bytes: &[u8]) -> Result<Json, CodecError> {
    let doc = codec::read_document(bytes)?;
    if doc.schema == SESSION_DELTA_SCHEMA {
        return Err(CodecError::Schema(
            SESSION_DELTA_SCHEMA.to_string(),
            SESSION_CHECKPOINT_SCHEMA_V3.to_string(),
        ));
    }
    doc.check_schema(SESSION_CHECKPOINT_SCHEMA_V3)?;
    let mut meta = codec::decode_value(doc.require("meta")?)?;
    let blobs = split_nodes_payload(doc.require("nodes")?)?;
    let mut nodes = Vec::with_capacity(blobs.len());
    for blob in blobs {
        nodes.push(codec::decode_value(blob)?);
    }
    let not_v2 =
        || CodecError::Schema("malformed v3 meta".to_string(), "session-checkpoint/v2".to_string());
    let Json::Obj(entries) = &mut meta else {
        return Err(not_v2());
    };
    let env = entries
        .iter_mut()
        .find(|(k, _)| k == "env")
        .map(|(_, v)| v)
        .ok_or_else(not_v2)?;
    let Json::Obj(env_entries) = env else {
        return Err(not_v2());
    };
    // The v2 writer puts `nodes` last in the env object; splicing it back
    // at the end reproduces the v2 field order exactly.
    env_entries.push(("nodes".to_string(), Json::Arr(nodes)));
    Ok(meta)
}

/// Replays a delta chain: `base` (a full v3 snapshot) plus `deltas` in
/// order, verifying every fingerprint link, and re-emits the final state
/// as full v3 bytes — **bit-identical** to a full snapshot taken at the
/// same point (both paths share the same section writers).
pub fn reconstruct_chain(base: &[u8], deltas: &[Vec<u8>]) -> Result<Vec<u8>, CodecError> {
    let doc = codec::read_document(base)?;
    doc.check_schema(SESSION_CHECKPOINT_SCHEMA_V3)?;
    let mut meta: Vec<u8> = doc.require("meta")?.to_vec();
    let mut blobs: Vec<Vec<u8>> =
        split_nodes_payload(doc.require("nodes")?)?.iter().map(|b| b.to_vec()).collect();
    let link_err = |msg: &str| CodecError::Schema(msg.to_string(), SESSION_DELTA_SCHEMA.to_string());
    for delta in deltas {
        let d = codec::read_document(delta)?;
        d.check_schema(SESSION_DELTA_SCHEMA)?;
        let mut parent_bytes = d.require("parent")?;
        let parent = read_u64(&mut parent_bytes)?;
        if parent != fingerprint(blobs.iter().map(|b| b.as_slice())) {
            return Err(link_err("delta parent fingerprint does not match chain state"));
        }
        meta.clear();
        meta.extend_from_slice(d.require("meta")?);
        let mut payload = d.require("nodes")?;
        let changed = read_u32(&mut payload)? as usize;
        if changed > payload.len() {
            return Err(CodecError::Length);
        }
        for _ in 0..changed {
            let idx = read_u32(&mut payload)? as usize;
            let len = read_u64(&mut payload)?;
            let len = usize::try_from(len).map_err(|_| CodecError::Length)?;
            let blob = split_prefix(&mut payload, len)?;
            let slot = blobs
                .get_mut(idx)
                .ok_or_else(|| link_err("delta names a node index outside the fleet"))?;
            slot.clear();
            slot.extend_from_slice(blob);
        }
        if !payload.is_empty() {
            return Err(CodecError::Trailing);
        }
        let mut result_bytes = d.require("result")?;
        let result = read_u64(&mut result_bytes)?;
        if result != fingerprint(blobs.iter().map(|b| b.as_slice())) {
            return Err(link_err("delta result fingerprint does not match spliced state"));
        }
    }
    let mut payload = Vec::new();
    write_nodes_payload(&mut payload, blobs.len(), blobs.iter().map(|b| b.as_slice()))?;
    let mut out = Vec::new();
    codec::write_document(
        &mut out,
        SESSION_CHECKPOINT_SCHEMA_V3,
        &[("meta", &meta), ("nodes", &payload)],
    )?;
    Ok(out)
}
