//! The discrete-event distributed-training engine.
//!
//! The engine executes a training algorithm over a simulated heterogeneous
//! network following the paper's global-step model (§IV): worker nodes own
//! private virtual clocks, and the engine dispatches whichever worker
//! completes its iteration first. One dispatch = one global step `k`.
//!
//! Layout:
//! * [`checkpoint`] — binary snapshot containers and incremental deltas
//!   ([`CheckpointFormat`], [`CheckpointScratch`]).
//! * [`config`] — run-level knobs ([`TrainConfig`], [`ExecutionMode`]).
//! * [`environment`] — per-node state and the shared [`Environment`]
//!   (models, shards, network, clocks).
//! * [`recorder`] — metric sampling and the final [`RunReport`].
//! * [`session`] — the step-wise execution surface: [`Session`],
//!   [`SessionDriver`], [`StepEvent`], [`Observer`], checkpoint/resume.
//! * [`stop`] — serializable [`StopCondition`] expressions.
//! * [`gossip`] — the asynchronous gossip driver shared by NetMax,
//!   AD-PSGD, GoSGD, and SAPS-PSGD ([`GossipBehavior`]).
//! * [`scenario`] — declarative experiment construction
//!   ([`ScenarioBuilder`]).

pub mod checkpoint;
pub mod config;
pub mod environment;
pub mod gossip;
pub mod recorder;
pub mod scenario;
pub mod session;
pub mod stop;

pub use checkpoint::{
    decode_session_v3, encode_session_v3, reconstruct_chain, CheckpointFormat, CheckpointScratch,
    SESSION_CHECKPOINT_SCHEMA_V3, SESSION_DELTA_SCHEMA,
};
pub use config::{ExecutionMode, TrainConfig};
pub use environment::{Environment, NodeState};
pub use gossip::{
    check_node_index, purge_events, queue_from_json, queue_to_json, run_gossip, GossipBehavior,
    GossipDriver, PeerChoice,
};
pub use recorder::{Recorder, RunReport, Sample};
pub use scenario::{PartitionKind, Scenario, ScenarioBuilder, TopologyKind};
pub use session::{
    DriverEvent, Observer, Session, SessionDriver, SessionError, StepEvent,
    SESSION_CHECKPOINT_SCHEMA,
};
pub use stop::StopCondition;

use netmax_json::{FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// A distributed training algorithm executable by the engine.
///
/// The execution surface is the step-wise [`Session`]: an algorithm's job
/// is to provide a [`SessionDriver`] via [`Algorithm::driver`], and
/// [`Algorithm::run`] is a one-line blocking convenience over it.
pub trait Algorithm {
    /// Short identifier used in reports and figures ("netmax", "ad-psgd" …).
    fn name(&self) -> &'static str;

    /// Wraps this algorithm in a [`SessionDriver`] (borrowing `self` for
    /// the duration of the session).
    fn driver(&mut self) -> Box<dyn SessionDriver + '_>;

    /// Runs to completion (per the environment's
    /// [`TrainConfig::effective_stop`]) and returns the recorded metrics.
    ///
    /// # Panics
    /// Panics if the configuration fails session validation; use
    /// [`Session::new`] directly for a typed error.
    fn run(&mut self, env: &mut Environment) -> RunReport {
        let driver = self.driver();
        let mut session =
            Session::new(env, driver).unwrap_or_else(|e| panic!("invalid session: {e}"));
        session.run()
    }
}

/// The algorithms evaluated in the paper, for declarative selection in
/// harnesses and configs. Constructors live in `netmax-core` (NetMax) and
/// `netmax-baselines` (everything else — see
/// `netmax_baselines::algorithm_for`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// The paper's contribution (Algorithms 1–3).
    NetMax,
    /// NetMax with the Network Monitor disabled (fixed uniform policy);
    /// the "uniform" arm of the Fig. 7 ablation.
    NetMaxUniform,
    /// Asynchronous decentralized PSGD, Lian et al. \[11\].
    AdPsgd,
    /// AD-PSGD steered by a NetMax Network Monitor (§III-D / §V-H).
    AdPsgdMonitored,
    /// Gossip SGD with weighted push-pull averaging \[12, 17\].
    GoSgd,
    /// Synchronous ring-allreduce SGD \[8\].
    AllreduceSgd,
    /// Prague: randomized partial-allreduce groups \[14\].
    Prague,
    /// Synchronous parameter server.
    PsSync,
    /// Asynchronous parameter server.
    PsAsync,
    /// SAPS-PSGD: fixed initially-fast-subgraph gossip \[15\].
    SapsPsgd,
    /// Hop/Gaia-style staleness-bounded gossip \[3, 25\].
    BoundedStaleness,
}

impl AlgorithmKind {
    /// Canonical display name (matches the paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmKind::NetMax => "NetMax",
            AlgorithmKind::NetMaxUniform => "NetMax-uniform",
            AlgorithmKind::AdPsgd => "AD-PSGD",
            AlgorithmKind::AdPsgdMonitored => "AD-PSGD+Monitor",
            AlgorithmKind::GoSgd => "GoSGD",
            AlgorithmKind::AllreduceSgd => "Allreduce",
            AlgorithmKind::Prague => "Prague",
            AlgorithmKind::PsSync => "PS-syn",
            AlgorithmKind::PsAsync => "PS-asyn",
            AlgorithmKind::SapsPsgd => "SAPS-PSGD",
            AlgorithmKind::BoundedStaleness => "Bounded-staleness",
        }
    }

    /// The four headline competitors of §V-B.
    pub fn headline_four() -> [AlgorithmKind; 4] {
        [
            AlgorithmKind::Prague,
            AlgorithmKind::AllreduceSgd,
            AlgorithmKind::AdPsgd,
            AlgorithmKind::NetMax,
        ]
    }

    /// Every algorithm kind, in paper order.
    pub fn all() -> [AlgorithmKind; 11] {
        [
            AlgorithmKind::NetMax,
            AlgorithmKind::NetMaxUniform,
            AlgorithmKind::AdPsgd,
            AlgorithmKind::AdPsgdMonitored,
            AlgorithmKind::GoSgd,
            AlgorithmKind::AllreduceSgd,
            AlgorithmKind::Prague,
            AlgorithmKind::PsSync,
            AlgorithmKind::PsAsync,
            AlgorithmKind::SapsPsgd,
            AlgorithmKind::BoundedStaleness,
        ]
    }

    /// Stable CLI/JSON identifier (`netmax`, `ad-psgd`, …).
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::NetMax => "netmax",
            AlgorithmKind::NetMaxUniform => "netmax-uniform",
            AlgorithmKind::AdPsgd => "ad-psgd",
            AlgorithmKind::AdPsgdMonitored => "ad-psgd-monitor",
            AlgorithmKind::GoSgd => "gosgd",
            AlgorithmKind::AllreduceSgd => "allreduce",
            AlgorithmKind::Prague => "prague",
            AlgorithmKind::PsSync => "ps-sync",
            AlgorithmKind::PsAsync => "ps-async",
            AlgorithmKind::SapsPsgd => "saps-psgd",
            AlgorithmKind::BoundedStaleness => "bounded-staleness",
        }
    }

    /// Inverse of [`AlgorithmKind::name`].
    pub fn by_name(name: &str) -> Option<AlgorithmKind> {
        AlgorithmKind::all().into_iter().find(|k| k.name() == name)
    }
}

impl ToJson for AlgorithmKind {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for AlgorithmKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v.as_str()?;
        AlgorithmKind::by_name(name)
            .ok_or_else(|| JsonError::schema(format!("unknown algorithm `{name}`")))
    }
}
