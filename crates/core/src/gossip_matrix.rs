//! The expected gossip matrix `Y_P = E[(D^k)^T D^k]` and the convergence
//! bound it induces.
//!
//! Section IV of the paper shows that one NetMax global step is the linear
//! map `x^{k+1} = D^k (x^k − α g^k)` with
//! `D^k = I + αρ γ_{i,m} e_i (e_m − e_i)^T` (Eq. 18–19), where worker `i`
//! fires with probability `p_i` and picks neighbour `m` with probability
//! `p_{i,m}`. The expectation over both random indices gives the entries
//! of Eq. (22), reproduced verbatim by [`build_y`].
//!
//! For any **feasible** policy (rows of equal expected iteration time and
//! `p_{i,m} > αρ(d_{i,m}+d_{m,i})`), Lemmas 1–3 guarantee `Y_P` is
//! symmetric, doubly stochastic, non-negative, and irreducible, so its
//! second eigenvalue λ₂ < 1 bounds the convergence rate via Eq. (23).

use crate::sparse_policy::{EdgeTimes, SparsePolicy};
use netmax_linalg::{Matrix, SparseSymmetric};
use netmax_net::Topology;

/// Computes the per-node firing probabilities `p_i` of Eq. (3) from an
/// iteration-time matrix and a policy.
///
/// `p_i = (1/t̄_i) / Σ_m (1/t̄_m)` where `t̄_i = Σ_m t_{i,m} p_{i,m} d_{i,m}`
/// (Eq. 2). For a feasible policy all `t̄_i` are equal and this returns the
/// uniform vector `1/M`.
///
/// # Panics
/// Panics if shapes disagree or a node has zero expected iteration time.
pub fn node_probabilities(times: &Matrix, policy: &Matrix, topo: &Topology) -> Vec<f64> {
    let m = topo.len();
    assert_eq!(times.rows(), m, "times shape mismatch");
    assert_eq!(policy.rows(), m, "policy shape mismatch");
    let mut inv_t = Vec::with_capacity(m);
    for i in 0..m {
        let ti: f64 = (0..m)
            .map(|j| times[(i, j)] * policy[(i, j)] * topo.d(i, j))
            .sum();
        assert!(
            ti > 0.0,
            "node {i} has zero expected iteration time — policy gives it no neighbours"
        );
        inv_t.push(1.0 / ti);
    }
    let z: f64 = inv_t.iter().sum();
    inv_t.iter().map(|&x| x / z).collect()
}

/// Builds `Y_P` from a policy matrix per Eq. (22).
///
/// * `policy` — `p_{i,m}`, an `M × M` row-stochastic matrix whose diagonal
///   holds the self-selection probability.
/// * `p_node` — firing probabilities `p_i` (uniform `1/M` for feasible
///   policies, per Lemma 1).
/// * `alpha`, `rho` — learning rate α and disagreement weight ρ.
///
/// # Panics
/// Panics if shapes disagree.
pub fn build_y(
    policy: &Matrix,
    topo: &Topology,
    p_node: &[f64],
    alpha: f64,
    rho: f64,
) -> Matrix {
    let m = topo.len();
    assert_eq!(policy.rows(), m, "policy shape mismatch");
    assert_eq!(p_node.len(), m, "p_node length mismatch");
    let ar = alpha * rho;

    // γ_{i,m} = (d_{i,m} + d_{m,i}) / (2 p_{i,m}); undefined when
    // p_{i,m} = 0, but every such term is multiplied by p_{i,m} — we fold
    // the product analytically:  p_{i,m} γ_{i,m}     = (d+d)/2
    //                            p_{i,m} γ_{i,m}²   = ((d+d)/2)² / p_{i,m}
    let half_d = |i: usize, j: usize| (topo.d(i, j) + topo.d(j, i)) / 2.0;

    let mut y = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            if i == j || !topo.is_edge(i, j) {
                continue;
            }
            let (pij, pji) = (policy[(i, j)], policy[(j, i)]);
            // First-order terms: p_i p_{i,j} γ_{i,j} = p_i (d+d)/2.
            let lin = p_node[i] * half_d(i, j) * ind(pij)
                + p_node[j] * half_d(j, i) * ind(pji);
            // Second-order: p_i p_{i,j} γ² = p_i ((d+d)/2)² / p_{i,j}.
            let quad = p_node[i] * sq(half_d(i, j)) * safe_div(pij)
                + p_node[j] * sq(half_d(j, i)) * safe_div(pji);
            y[(i, j)] = ar * lin - ar * ar * quad;
        }
    }
    // Diagonal from Eq. (22): row-local subtraction plus quadratic term.
    for i in 0..m {
        let mut lin = 0.0;
        let mut quad = 0.0;
        for j in 0..m {
            if i == j || !topo.is_edge(i, j) {
                continue;
            }
            lin += p_node[i] * half_d(i, j) * ind(policy[(i, j)]);
            quad += p_node[i] * sq(half_d(i, j)) * safe_div(policy[(i, j)])
                + p_node[j] * sq(half_d(j, i)) * safe_div(policy[(j, i)]);
        }
        y[(i, i)] = 1.0 - 2.0 * ar * lin + ar * ar * quad;
    }
    y
}

/// Edge-set counterpart of [`node_probabilities`]: `p_i` from sparse
/// iteration times and a sparse policy, never materialising an `M × M`
/// object. Entries are float-identical to the dense version's (absent
/// pairs contribute exactly `+0.0` to each row reduction).
///
/// # Panics
/// Panics if shapes disagree or a node has zero expected iteration time.
pub fn node_probabilities_sparse(
    times: &EdgeTimes,
    policy: &SparsePolicy,
    topo: &Topology,
) -> Vec<f64> {
    let m = topo.len();
    assert_eq!(times.len(), m, "times shape mismatch");
    assert_eq!(policy.len(), m, "policy shape mismatch");
    let mut inv_t = Vec::with_capacity(m);
    for i in 0..m {
        let ti: f64 = times
            .row(i)
            .iter()
            .map(|&(j, t)| t * policy.get(i, j) * topo.d(i, j))
            .sum();
        assert!(
            ti > 0.0,
            "node {i} has zero expected iteration time — policy gives it no neighbours"
        );
        inv_t.push(1.0 / ti);
    }
    let z: f64 = inv_t.iter().sum();
    inv_t.iter().map(|&x| x / z).collect()
}

/// Edge-set counterpart of [`build_y`]: assembles `Y_P` (Eq. 22) as a
/// [`SparseSymmetric`] whose pattern is the topology's edges plus the
/// diagonal. Every stored entry is float-identical to the dense
/// [`build_y`] output (both iterate the support in ascending column
/// order; absent pairs are exactly zero), so the sparse λ₂ solver sees
/// the same matrix the dense Jacobi path would.
///
/// # Panics
/// Panics if shapes disagree.
pub fn build_y_sparse(
    policy: &SparsePolicy,
    topo: &Topology,
    p_node: &[f64],
    alpha: f64,
    rho: f64,
) -> SparseSymmetric {
    let m = topo.len();
    assert_eq!(policy.len(), m, "policy shape mismatch");
    assert_eq!(p_node.len(), m, "p_node length mismatch");
    let ar = alpha * rho;
    let half_d = |i: usize, j: usize| (topo.d(i, j) + topo.d(j, i)) / 2.0;

    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
    for i in 0..m {
        let nbrs = topo.neighbors(i);
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(nbrs.len() + 1);
        // Off-diagonals in ascending order (the dense loop's j order).
        for &j in nbrs {
            let (pij, pji) = (policy.get(i, j), policy.get(j, i));
            let lin = p_node[i] * half_d(i, j) * ind(pij)
                + p_node[j] * half_d(j, i) * ind(pji);
            let quad = p_node[i] * sq(half_d(i, j)) * safe_div(pij)
                + p_node[j] * sq(half_d(j, i)) * safe_div(pji);
            row.push((j, ar * lin - ar * ar * quad));
        }
        // Diagonal, accumulated over neighbours in the same ascending
        // order the dense loop uses.
        let mut lin = 0.0;
        let mut quad = 0.0;
        for &j in nbrs {
            lin += p_node[i] * half_d(i, j) * ind(policy.get(i, j));
            quad += p_node[i] * sq(half_d(i, j)) * safe_div(policy.get(i, j))
                + p_node[j] * sq(half_d(j, i)) * safe_div(policy.get(j, i));
        }
        let at = row.partition_point(|&(j, _)| j < i);
        row.insert(at, (i, 1.0 - 2.0 * ar * lin + ar * ar * quad));
        rows.push(row);
    }
    SparseSymmetric::from_rows(rows)
}

/// Indicator that the probability is positive (a worker that never selects
/// a neighbour contributes nothing through that term).
fn ind(p: f64) -> f64 {
    if p > 0.0 {
        1.0
    } else {
        0.0
    }
}

fn safe_div(p: f64) -> f64 {
    if p > 0.0 {
        1.0 / p
    } else {
        0.0
    }
}

fn sq(x: f64) -> f64 {
    x * x
}

/// Evaluates the convergence bound of Theorem 1 (Eq. 23):
/// `E‖x^k − x*1‖² ≤ λᵏ ‖x⁰ − x*1‖² + α²σ² λ/(1−λ)`.
///
/// Returns the bound value; callers compare successive `k` or policies.
///
/// # Panics
/// Panics unless `0 ≤ lambda < 1`.
pub fn convergence_bound(
    lambda: f64,
    k: u64,
    initial_deviation_sq: f64,
    alpha: f64,
    sigma_sq: f64,
) -> f64 {
    assert!((0.0..1.0).contains(&lambda), "bound requires 0 ≤ λ < 1, got {lambda}");
    lambda.powi(k.min(i32::MAX as u64) as i32) * initial_deviation_sq
        + alpha * alpha * sigma_sq * lambda / (1.0 - lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_linalg::{
        is_doubly_stochastic, is_irreducible, is_nonnegative, is_symmetric,
        second_largest_eigenvalue,
    };

    /// A feasible uniform policy on the complete graph: every node picks
    /// each neighbour with probability q and itself with 1 − (M−1) q.
    fn uniform_policy(m: usize, q: f64) -> Matrix {
        let mut p = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                p[(i, j)] = if i == j { 1.0 - (m as f64 - 1.0) * q } else { q };
            }
        }
        p
    }

    #[test]
    fn uniform_policy_yields_doubly_stochastic_y() {
        let m = 5;
        let topo = Topology::fully_connected(m);
        let policy = uniform_policy(m, 0.2);
        let p_node = vec![1.0 / m as f64; m];
        let (alpha, rho) = (0.05, 1.0);
        // Feasibility: q = 0.2 > 2αρ = 0.1. ✓
        let y = build_y(&policy, &topo, &p_node, alpha, rho);
        assert!(is_symmetric(&y, 1e-12), "Lemma 1 symmetry violated:\n{y:?}");
        assert!(is_nonnegative(&y, 1e-12), "Lemma 2 violated");
        assert!(is_doubly_stochastic(&y, 1e-9), "Lemma 1 stochasticity violated:\n{y:?}");
        assert!(is_irreducible(&y, 1e-12), "Lemma 3 violated");
        let l2 = second_largest_eigenvalue(&y);
        assert!(l2 < 1.0, "Theorem 3: λ₂ must be < 1, got {l2}");
        assert!(l2 > 0.0);
    }

    #[test]
    fn infeasible_policy_breaks_nonnegativity() {
        // q < 2αρ violates Eq. (11); y_{i,m} goes negative.
        let m = 4;
        let topo = Topology::fully_connected(m);
        let policy = uniform_policy(m, 0.05);
        let p_node = vec![0.25; m];
        let y = build_y(&policy, &topo, &p_node, 0.1, 1.0); // 2αρ = 0.2 > 0.05
        assert!(!is_nonnegative(&y, 1e-12), "expected a negative off-diagonal");
    }

    #[test]
    fn ring_topology_keeps_zero_pattern() {
        let m = 6;
        let topo = Topology::ring(m);
        // Each node: two neighbours at 0.3, self 0.4.
        let mut policy = Matrix::zeros(m, m);
        for i in 0..m {
            policy[(i, i)] = 0.4;
            policy[(i, (i + 1) % m)] = 0.3;
            policy[(i, (i + m - 1) % m)] = 0.3;
        }
        let p_node = vec![1.0 / m as f64; m];
        let y = build_y(&policy, &topo, &p_node, 0.05, 1.0);
        // Non-adjacent pairs must stay zero.
        assert_eq!(y[(0, 2)], 0.0);
        assert_eq!(y[(0, 3)], 0.0);
        assert!(y[(0, 1)] > 0.0);
        assert!(is_doubly_stochastic(&y, 1e-9));
        assert!(is_irreducible(&y, 1e-12));
    }

    #[test]
    fn node_probabilities_uniform_for_equal_times() {
        let m = 4;
        let topo = Topology::fully_connected(m);
        let policy = uniform_policy(m, 0.2);
        let mut times = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    times[(i, j)] = 2.0;
                }
            }
        }
        let p = node_probabilities(&times, &policy, &topo);
        for pi in p {
            assert!((pi - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn node_probabilities_favor_fast_nodes() {
        // Node 0 has much faster links: it fires more often.
        let m = 3;
        let topo = Topology::fully_connected(m);
        let policy = uniform_policy(m, 0.3);
        let mut times = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    times[(i, j)] = if i == 0 { 0.1 } else { 1.0 };
                }
            }
        }
        let p = node_probabilities(&times, &policy, &topo);
        assert!(p[0] > p[1] && p[0] > p[2]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_y_matches_dense_entrywise() {
        // Ring: the sparse assembly must reproduce the dense Eq. 22
        // entries bit for bit over the pattern, and zero elsewhere.
        let m = 8;
        let topo = Topology::ring(m);
        let mut policy = Matrix::zeros(m, m);
        for i in 0..m {
            policy[(i, i)] = 0.4;
            policy[(i, (i + 1) % m)] = 0.25 + 0.01 * i as f64;
            policy[(i, (i + m - 1) % m)] = 0.35 - 0.01 * i as f64;
        }
        let p_node = vec![1.0 / m as f64; m];
        let (alpha, rho) = (0.05, 1.0);
        let dense = build_y(&policy, &topo, &p_node, alpha, rho);
        let sparse = build_y_sparse(
            &crate::sparse_policy::SparsePolicy::from_dense(&policy),
            &topo,
            &p_node,
            alpha,
            rho,
        );
        for i in 0..m {
            for j in 0..m {
                assert_eq!(sparse.get(i, j), dense[(i, j)], "Y[{i},{j}] differs");
            }
        }
    }

    #[test]
    fn sparse_node_probabilities_match_dense() {
        let m = 6;
        let topo = Topology::fully_connected(m);
        let policy = uniform_policy(m, 0.15);
        let mut times = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    times[(i, j)] = 0.5 + 0.1 * ((i * m + j) % 5) as f64;
                }
            }
        }
        let dense = node_probabilities(&times, &policy, &topo);
        let sparse = node_probabilities_sparse(
            &crate::sparse_policy::EdgeTimes::from_dense(&times, &topo),
            &crate::sparse_policy::SparsePolicy::from_dense(&policy),
            &topo,
        );
        assert_eq!(dense, sparse);
    }

    #[test]
    fn smaller_lambda_gives_tighter_bound() {
        let b_small = convergence_bound(0.5, 50, 100.0, 0.1, 1.0);
        let b_large = convergence_bound(0.99, 50, 100.0, 0.1, 1.0);
        assert!(b_small < b_large);
    }

    #[test]
    fn bound_decays_in_k() {
        let b10 = convergence_bound(0.9, 10, 100.0, 0.1, 1.0);
        let b100 = convergence_bound(0.9, 100, 100.0, 0.1, 1.0);
        assert!(b100 < b10);
        // Floor: the α²σ²λ/(1−λ) noise ball.
        let floor = 0.1 * 0.1 * 1.0 * 0.9 / 0.1;
        assert!(convergence_bound(0.9, 10_000, 100.0, 0.1, 1.0) >= floor);
    }

    #[test]
    #[should_panic(expected = "λ")]
    fn bound_rejects_lambda_one() {
        let _ = convergence_bound(1.0, 10, 1.0, 0.1, 1.0);
    }
}
