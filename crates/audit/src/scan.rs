//! Per-file scanning: test-region detection, the determinism and
//! hot-path rules, and the panic-site counters behind the ratchet.
//!
//! Everything here operates on the lexed token stream of one file. Test
//! code — `#[cfg(test)]` modules and `#[test]`/`#[bench]` functions — is
//! excluded from every rule: the invariants protect the *shipped* engine,
//! and tests legitimately panic, allocate, and use hash containers.

use crate::lexer::{Lexed, Tok, Token};
use crate::suppress::{self, SuppressError, Suppression};

/// One file, lexed and pre-processed for rule scans.
#[derive(Debug, Clone)]
pub struct FileScan {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The raw source (kept for substring checks on schema-tag strings).
    pub raw: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Whether each token sits inside test-only code (parallel to
    /// `tokens`).
    in_test: Vec<bool>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// Malformed `audit:` directives: `(line, error)`.
    pub malformed: Vec<(u32, SuppressError)>,
}

impl FileScan {
    /// Lexes and pre-processes one source file.
    pub fn new(path: impl Into<String>, source: &str) -> FileScan {
        let Lexed { tokens, comments } = crate::lexer::lex(source);
        let in_test = test_mask(&tokens);
        let (suppressions, malformed) = suppress::collect(&comments);
        FileScan {
            path: path.into(),
            raw: source.to_string(),
            tokens,
            in_test,
            suppressions,
            malformed,
        }
    }

    /// Whether the token at `idx` is inside `#[cfg(test)]` / `#[test]`
    /// code.
    pub fn is_test(&self, idx: usize) -> bool {
        self.in_test.get(idx).copied().unwrap_or(false)
    }

    fn ident(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    fn punct(&self, idx: usize) -> Option<char> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn line(&self, idx: usize) -> u32 {
        self.tokens.get(idx).map(|t| t.line).unwrap_or(0)
    }
}

/// Marks every token inside test-only code. Detected shapes:
///
/// * `#[cfg(test)] mod name { … }` (and `cfg(all(test, …))` etc. — any
///   attribute whose tokens contain both `cfg` and `test`);
/// * `#[test] fn name() { … }` and `#[bench]` likewise;
/// * attribute stacks: intervening attributes/doc comments between the
///   marker attribute and the item are handled.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    let mut pending_test_attr = false;
    while i < tokens.len() {
        if matches!(&tokens[i].tok, Tok::Punct('#'))
            && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            // Scan the attribute's bracket-balanced token range.
            let attr_start = i + 2;
            let mut depth = 1i32;
            let mut j = attr_start;
            let mut saw_cfg = false;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(s) => match s.as_str() {
                        "cfg" => saw_cfg = true,
                        "test" | "bench" => saw_test = true,
                        "not" => saw_not = true,
                        _ => {}
                    },
                    _ => {}
                }
                j += 1;
            }
            // `#[test]` / `#[bench]` alone, or `#[cfg(… test …)]` — but
            // `#[cfg(not(test))]` guards *production* code and must stay
            // scanned (conservative: any `not` disqualifies the marker).
            let is_marker = saw_test && !saw_not && (saw_cfg || j == attr_start + 2);
            if is_marker {
                pending_test_attr = true;
                // The attribute tokens themselves are test-only too.
                for m in mask.iter_mut().take(j).skip(i) {
                    *m = true;
                }
            }
            i = j;
            continue;
        }
        if pending_test_attr {
            // Mark everything from here through the end of the item the
            // attribute is attached to: either a braced body or a
            // semicolon-terminated item, whichever comes first at depth 0.
            let start = i;
            let mut j = i;
            let mut end = tokens.len();
            while j < tokens.len() {
                match &tokens[j].tok {
                    Tok::Punct(';') => {
                        end = j + 1;
                        break;
                    }
                    Tok::Punct('{') => {
                        end = matching_brace(tokens, j).map_or(tokens.len(), |e| e + 1);
                        break;
                    }
                    _ => j += 1,
                }
            }
            for m in mask.iter_mut().take(end).skip(start) {
                *m = true;
            }
            pending_test_attr = false;
            i = end;
            continue;
        }
        i += 1;
    }
    mask
}

/// The index just past the `}` matching the `{` at `open` (which must be
/// a `{` token), or `None` if unbalanced.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// A banned-identifier hit: `(line, identifier)`.
pub type IdentHit = (u32, String);

/// Finds non-test occurrences of any identifier in `banned`.
pub fn find_banned_idents(scan: &FileScan, banned: &[&str]) -> Vec<IdentHit> {
    let mut hits = Vec::new();
    for (i, t) in scan.tokens.iter().enumerate() {
        if scan.is_test(i) {
            continue;
        }
        if let Tok::Ident(s) = &t.tok {
            if banned.contains(&s.as_str()) {
                hits.push((t.line, s.clone()));
            }
        }
    }
    hits
}

/// Per-file panic-site counts feeding the ratchet. Each field counts
/// *non-test* occurrences.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PanicCounts {
    /// `.unwrap()` calls.
    pub unwrap: usize,
    /// `.expect(…)` calls.
    pub expect: usize,
    /// `panic!`, `todo!`, `unimplemented!` invocations.
    pub panic: usize,
    /// `unreachable!` invocations.
    pub unreachable: usize,
    /// Direct index expressions `x[…]` (including slices `x[a..b]`).
    pub index: usize,
}

impl PanicCounts {
    /// Sum of all categories.
    pub fn total(&self) -> usize {
        self.unwrap + self.expect + self.panic + self.unreachable + self.index
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &PanicCounts) {
        self.unwrap += other.unwrap;
        self.expect += other.expect;
        self.panic += other.panic;
        self.unreachable += other.unreachable;
        self.index += other.index;
    }

    /// Whether any category of `self` exceeds the same category of
    /// `budget`.
    pub fn exceeds(&self, budget: &PanicCounts) -> Option<String> {
        let pairs = [
            ("unwrap", self.unwrap, budget.unwrap),
            ("expect", self.expect, budget.expect),
            ("panic", self.panic, budget.panic),
            ("unreachable", self.unreachable, budget.unreachable),
            ("index", self.index, budget.index),
        ];
        let over: Vec<String> = pairs
            .iter()
            .filter(|(_, actual, allowed)| actual > allowed)
            .map(|(name, actual, allowed)| format!("{name} {actual} > {allowed}"))
            .collect();
        if over.is_empty() {
            None
        } else {
            Some(over.join(", "))
        }
    }
}

/// Keywords that can directly precede a `[` that opens an array *literal*
/// rather than an index expression (`return [a, b]`, `as [u8; 2]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "in", "return", "break", "mut", "ref", "where", "if", "else", "match", "move", "dyn",
    "impl", "fn", "let", "const", "static", "type", "use", "pub", "crate", "self", "super",
    "while", "loop", "for", "yield",
];

/// Counts the file's non-test panic sites.
pub fn count_panic_sites(scan: &FileScan) -> PanicCounts {
    let mut counts = PanicCounts::default();
    if scan.tokens.is_empty() {
        return counts;
    }
    for (_, category) in panic_sites_in(scan, 0, scan.tokens.len() - 1) {
        counts.bump(category);
    }
    counts
}

/// A banned pattern for hot-path bodies, parsed from its policy string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BannedPattern {
    /// `.name` — a method call, e.g. `.collect`.
    Method(String),
    /// `name!` — a macro invocation, e.g. `vec!`, `format!`.
    Macro(String),
    /// `A::b` — a two-segment path, e.g. `Vec::new`, `Box::new`.
    Path(String, String),
}

impl BannedPattern {
    /// Parses the policy spelling: `.collect`, `vec!`, or `Vec::new`.
    pub fn parse(s: &str) -> Option<BannedPattern> {
        if let Some(name) = s.strip_prefix('.') {
            return Some(BannedPattern::Method(name.to_string()));
        }
        if let Some(name) = s.strip_suffix('!') {
            return Some(BannedPattern::Macro(name.to_string()));
        }
        let (a, b) = s.split_once("::")?;
        Some(BannedPattern::Path(a.to_string(), b.to_string()))
    }

    /// The policy spelling back.
    pub fn display(&self) -> String {
        match self {
            BannedPattern::Method(m) => format!(".{m}"),
            BannedPattern::Macro(m) => format!("{m}!"),
            BannedPattern::Path(a, b) => format!("{a}::{b}"),
        }
    }

    fn matches_at(&self, scan: &FileScan, i: usize) -> bool {
        match self {
            BannedPattern::Method(name) => {
                scan.punct(i.wrapping_sub(1)) == Some('.') && scan.ident(i) == Some(name)
            }
            BannedPattern::Macro(name) => {
                scan.ident(i) == Some(name) && scan.punct(i + 1) == Some('!')
            }
            BannedPattern::Path(a, b) => {
                scan.ident(i) == Some(a)
                    && scan.punct(i + 1) == Some(':')
                    && scan.punct(i + 2) == Some(':')
                    && scan.ident(i + 3) == Some(b)
            }
        }
    }
}

/// Finds non-test occurrences of any identifier in `banned` within the
/// inclusive token range — the closure rules scan one function body at
/// a time instead of the whole file.
pub fn find_banned_idents_in(
    scan: &FileScan,
    open: usize,
    close: usize,
    banned: &[&str],
) -> Vec<IdentHit> {
    let mut hits = Vec::new();
    for i in open..=close.min(scan.tokens.len().saturating_sub(1)) {
        if scan.is_test(i) {
            continue;
        }
        if let Tok::Ident(s) = &scan.tokens[i].tok {
            if banned.contains(&s.as_str()) {
                hits.push((scan.tokens[i].line, s.clone()));
            }
        }
    }
    hits
}

/// Finds banned-pattern matches within the inclusive token range:
/// `(line, pattern spelling)` pairs in source order.
pub fn find_banned_patterns_in(
    scan: &FileScan,
    open: usize,
    close: usize,
    banned: &[BannedPattern],
) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for i in open..=close.min(scan.tokens.len().saturating_sub(1)) {
        for pat in banned {
            if pat.matches_at(scan, i) {
                hits.push((scan.tokens[i].line, pat.display()));
            }
        }
    }
    hits
}

/// One panic site within a token range: `(token index, category)`. The
/// token index (not the line) identifies the site, so overlapping
/// function bodies — a nested `fn` inside another — never double-count
/// when a closure contains both.
pub type PanicSite = (usize, &'static str);

/// Lists the non-test panic sites within the inclusive token range.
pub fn panic_sites_in(scan: &FileScan, open: usize, close: usize) -> Vec<PanicSite> {
    let mut sites = Vec::new();
    for i in open..=close.min(scan.tokens.len().saturating_sub(1)) {
        if scan.is_test(i) {
            continue;
        }
        match &scan.tokens[i].tok {
            Tok::Ident(s) => {
                let method_call = scan.punct(i.wrapping_sub(1)) == Some('.')
                    && scan.punct(i + 1) == Some('(');
                let macro_call = scan.punct(i + 1) == Some('!');
                match s.as_str() {
                    "unwrap" if method_call => sites.push((i, "unwrap")),
                    "expect" if method_call => sites.push((i, "expect")),
                    "panic" | "todo" | "unimplemented" if macro_call => {
                        sites.push((i, "panic"));
                    }
                    "unreachable" if macro_call => sites.push((i, "unreachable")),
                    _ => {}
                }
            }
            Tok::Punct('[') if i > 0 => {
                let is_index = match &scan.tokens[i - 1].tok {
                    Tok::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    _ => false,
                };
                if is_index {
                    sites.push((i, "index"));
                }
            }
            _ => {}
        }
    }
    sites
}

impl PanicCounts {
    /// Adds one categorized site (as produced by [`panic_sites_in`]).
    pub fn bump(&mut self, category: &str) {
        match category {
            "unwrap" => self.unwrap += 1,
            "expect" => self.expect += 1,
            "panic" => self.panic += 1,
            "unreachable" => self.unreachable += 1,
            "index" => self.index += 1,
            _ => {}
        }
    }
}

/// One hot-path hit: `(line, function, pattern spelling)`.
pub type HotPathHit = (u32, String, String);

/// Scans every function named in `functions` (all occurrences — trait
/// defaults and impls alike) for the banned allocation patterns.
///
/// The scan is *shallow*: only the named function's own body is checked,
/// not its callees — the dynamic counting-allocator harnesses remain the
/// end-to-end proof; this rule catches the regressions a reviewer can see
/// in the diff. Returns the hits plus any manifest entries that matched
/// no function in the file (stale manifest — itself a violation).
pub fn scan_hot_paths(
    scan: &FileScan,
    functions: &[String],
    banned: &[BannedPattern],
) -> (Vec<HotPathHit>, Vec<String>) {
    let mut hits = Vec::new();
    let mut found: Vec<bool> = vec![false; functions.len()];
    let mut i = 0usize;
    while i < scan.tokens.len() {
        if scan.ident(i) == Some("fn") && !scan.is_test(i) {
            if let Some(name) = scan.ident(i + 1) {
                if let Some(fi) = functions.iter().position(|f| f == name) {
                    found[fi] = true;
                    let fname = name.to_string();
                    // The body is the first brace-balanced block after the
                    // signature (bounds and return types contain no `{`).
                    let mut j = i + 2;
                    while j < scan.tokens.len() && scan.punct(j) != Some('{') {
                        // A semicolon first means a trait method without a
                        // default body — nothing to scan.
                        if scan.punct(j) == Some(';') {
                            break;
                        }
                        j += 1;
                    }
                    if scan.punct(j) == Some('{') {
                        let end = matching_brace(&scan.tokens, j)
                            .unwrap_or(scan.tokens.len().saturating_sub(1));
                        for k in j..=end.min(scan.tokens.len().saturating_sub(1)) {
                            for pat in banned {
                                if pat.matches_at(scan, k) {
                                    hits.push((scan.line(k), fname.clone(), pat.display()));
                                }
                            }
                        }
                        i = end + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    let stale = functions
        .iter()
        .zip(&found)
        .filter(|(_, f)| !**f)
        .map(|(n, _)| n.clone())
        .collect();
    (hits, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileScan {
        FileScan::new("test.rs", src)
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "
            fn real() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); z.unwrap(); }
            }
        ";
        let counts = count_panic_sites(&scan(src));
        assert_eq!(counts.unwrap, 1, "only the non-test unwrap counts");
    }

    #[test]
    fn test_attr_functions_are_masked_outside_modules() {
        let src = "
            #[test]
            fn standalone() { HashMap::new(); }
            fn real(m: &HashMap<u32, u32>) {}
        ";
        let hits = find_banned_idents(&scan(src), &["HashMap"]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 4);
    }

    #[test]
    fn cfg_test_on_use_item_masks_only_that_item() {
        let src = "
            #[cfg(test)]
            use std::collections::HashSet;
            fn real() { let t = Instant::now(); }
        ";
        let hits = find_banned_idents(&scan(src), &["HashSet", "Instant"]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "Instant");
    }

    #[test]
    fn panic_counting_distinguishes_categories() {
        let src = r#"
            fn f(v: &[u32], o: Option<u32>) -> u32 {
                let a = v[0];
                let b = o.unwrap();
                let c = o.expect("msg");
                if a > 9 { panic!("no") }
                match a { 0 => unreachable!(), _ => {} }
                let s = &v[1..3];
                b + c + s[0]
            }
        "#;
        let counts = count_panic_sites(&scan(src));
        assert_eq!(
            counts,
            PanicCounts { unwrap: 1, expect: 1, panic: 1, unreachable: 1, index: 3 }
        );
    }

    #[test]
    fn index_heuristic_skips_literals_attrs_and_types() {
        let src = "
            #[derive(Clone)]
            struct S { xs: [f64; 4] }
            fn f() -> [u8; 2] { return [1, 2]; }
            fn g(s: &S) -> f64 { s.xs[0] }
            fn h(m: &Vec<Vec<u8>>) -> u8 { m[0][1] }
        ";
        let counts = count_panic_sites(&scan(src));
        assert_eq!(counts.index, 3, "s.xs[0], m[0], [0][1]");
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap_or(3) + o.unwrap_or_default() }";
        assert_eq!(count_panic_sites(&scan(src)).unwrap, 0);
    }

    #[test]
    fn hot_path_scan_flags_only_listed_functions() {
        let src = r#"
            fn hot(&mut self) {
                let v: Vec<u32> = xs.iter().collect();
                let w = vec![1, 2];
                let s = format!("x");
            }
            fn cold(&mut self) { let v = vec![9]; }
        "#;
        let banned: Vec<BannedPattern> =
            [".collect", "vec!", "format!", "Vec::new"].iter().map(|s| BannedPattern::parse(s).unwrap()).collect();
        let (hits, stale) = scan_hot_paths(&scan(src), &["hot".to_string()], &banned);
        assert_eq!(hits.len(), 3, "{hits:?}");
        assert!(stale.is_empty());
        assert!(hits.iter().all(|(_, f, _)| f == "hot"));
    }

    #[test]
    fn hot_path_scan_reports_stale_manifest_entries() {
        let (hits, stale) =
            scan_hot_paths(&scan("fn present() {}"), &["present".into(), "gone".into()], &[]);
        assert!(hits.is_empty());
        assert_eq!(stale, ["gone"]);
    }

    #[test]
    fn trait_method_without_body_is_not_stale() {
        let src = "trait T { fn hot(&self); } impl T for U { fn hot(&self) { x.to_vec(); } }";
        let banned = [BannedPattern::parse(".to_vec").unwrap()];
        let (hits, stale) = scan_hot_paths(&scan(src), &["hot".to_string()], &banned);
        assert_eq!(hits.len(), 1);
        assert!(stale.is_empty());
    }
}
