//! The workspace call graph: conservative resolution of the call sites
//! [`items`](crate::items) extracted, reachability closures from policy
//! root sets, and the deterministic closure report data.
//!
//! Resolution is *over*-approximate by construction — the analyzer would
//! rather drag a same-named cold function into a closure (and make the
//! policy say so with an explicit `prune` entry a reviewer can see) than
//! silently miss a reachable allocation:
//!
//! * a free or method call `foo(…)` / `.foo(…)` links to **every**
//!   workspace `fn foo`, whatever its owner;
//! * a path call `A::foo(…)` links to the workspace functions whose
//!   owner is `A` — precise, because both segments are known;
//! * anything that matches no workspace definition (std/core methods,
//!   `Vec::new`, float intrinsics) lands in the **unresolved** bucket,
//!   which the closure report publishes so reviewers see exactly what
//!   the analyzer could not follow.

use crate::items::{Call, FnItem};
use crate::policy::RootEntry;
use std::collections::{BTreeMap, BTreeSet};

/// The resolved workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Every non-test function in the workspace, file-sorted.
    pub fns: Vec<FnItem>,
    /// Call edges as `(caller, callee)` indices into `fns`.
    pub edges: BTreeSet<(usize, usize)>,
    /// Unresolved calls: caller index → display names of calls that
    /// matched no workspace definition.
    pub unresolved: BTreeMap<usize, BTreeSet<String>>,
    /// Bare name → indices of every function with that name.
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from the parsed items of every workspace file.
    /// `fns` keeps the given order (callers should pass file-sorted
    /// items so ids and report order stay deterministic).
    pub fn build(fns: Vec<FnItem>) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        for (i, f) in fns.iter().enumerate() {
            if let Some(owner) = &f.owner {
                by_owner.entry((owner.as_str(), f.name.as_str())).or_default().push(i);
            }
        }
        let mut edges = BTreeSet::new();
        let mut unresolved: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            for site in &f.calls {
                let call = &site.call;
                let targets: &[usize] = match call {
                    Call::Free(name) | Call::Method(name) => {
                        by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
                    }
                    Call::Path(owner, name) => by_owner
                        .get(&(owner.as_str(), name.as_str()))
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                };
                if targets.is_empty() {
                    unresolved.entry(i).or_default().insert(call.display());
                } else {
                    for &t in targets {
                        edges.insert((i, t));
                    }
                }
            }
        }
        CallGraph { fns, edges, unresolved, by_name }
    }

    /// Indices of the functions a policy entry list names: every `fn`
    /// whose file and bare name match. Entries that match nothing are
    /// returned separately so the caller can flag them as policy-target
    /// violations (the root-set analogue of a stale manifest).
    pub fn select(&self, entries: &[RootEntry]) -> (BTreeSet<usize>, Vec<(String, String)>) {
        let mut picked = BTreeSet::new();
        let mut missing = Vec::new();
        for entry in entries {
            for func in &entry.functions {
                let mut any = false;
                for &i in self.by_name.get(func).map(Vec::as_slice).unwrap_or(&[]) {
                    if self.fns[i].file == entry.file {
                        picked.insert(i);
                        any = true;
                    }
                }
                if !any {
                    missing.push((entry.file.clone(), func.clone()));
                }
            }
        }
        (picked, missing)
    }

    /// The reachability closure from `roots`, never expanding into or
    /// through `pruned` functions.
    pub fn closure(&self, roots: &BTreeSet<usize>, pruned: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> =
            roots.iter().copied().filter(|i| !pruned.contains(i)).collect();
        let mut frontier: Vec<usize> = seen.iter().copied().collect();
        while let Some(i) = frontier.pop() {
            for &(a, b) in self.edges.range((i, 0)..(i + 1, 0)) {
                debug_assert_eq!(a, i);
                if !pruned.contains(&b) && seen.insert(b) {
                    frontier.push(b);
                }
            }
        }
        seen
    }

    /// Sorted display ids of the functions in `set`.
    pub fn ids(&self, set: &BTreeSet<usize>) -> Vec<String> {
        let mut out: Vec<String> = set.iter().map(|&i| self.fns[i].id()).collect();
        out.sort();
        out
    }

    /// Sorted `caller -> callee` display edges with both ends in `set`.
    pub fn edge_ids(&self, set: &BTreeSet<usize>) -> Vec<String> {
        let mut out: Vec<String> = self
            .edges
            .iter()
            .filter(|(a, b)| set.contains(a) && set.contains(b))
            .map(|(a, b)| format!("{} -> {}", self.fns[*a].id(), self.fns[*b].id()))
            .collect();
        out.sort();
        out
    }

    /// Sorted, deduplicated display names of the unresolved calls made
    /// by functions in `set`.
    pub fn unresolved_in(&self, set: &BTreeSet<usize>) -> Vec<String> {
        let mut names = BTreeSet::new();
        for i in set {
            if let Some(calls) = self.unresolved.get(i) {
                names.extend(calls.iter().cloned());
            }
        }
        names.into_iter().collect()
    }

    /// The whole graph in `--dump-graph` text form: one line per
    /// function followed by its resolved and unresolved callees.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, f) in self.fns.iter().enumerate() {
            let _ = writeln!(out, "{}", f.id());
            for &(_, b) in self.edges.range((i, 0)..(i + 1, 0)) {
                let _ = writeln!(out, "  -> {}", self.fns[b].id());
            }
            if let Some(calls) = self.unresolved.get(&i) {
                for c in calls {
                    let _ = writeln!(out, "  ?? {c}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::scan::FileScan;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let mut fns = Vec::new();
        for (path, src) in files {
            fns.extend(parse_items(&FileScan::new(*path, src)));
        }
        CallGraph::build(fns)
    }

    fn entry(file: &str, funcs: &[&str]) -> RootEntry {
        RootEntry {
            file: file.into(),
            functions: funcs.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn bare_names_fan_out_and_paths_stay_precise() {
        let g = graph(&[(
            "src/a.rs",
            "
            impl A { fn step(&self) {} }
            impl B { fn step(&self) {} }
            fn m1(x: &A) { x.step(); }
            fn m2() { A::step(a); }
            ",
        )]);
        let m1 = g.fns.iter().position(|f| f.name == "m1").unwrap();
        let m2 = g.fns.iter().position(|f| f.name == "m2").unwrap();
        assert_eq!(g.edges.iter().filter(|(a, _)| *a == m1).count(), 2, "method fans out");
        assert_eq!(g.edges.iter().filter(|(a, _)| *a == m2).count(), 1, "path is precise");
    }

    #[test]
    fn unknown_calls_land_in_unresolved() {
        let g = graph(&[("src/a.rs", "fn f(v: &mut Vec<u32>) { v.sort_unstable(); g(); }")]);
        let f = g.fns.iter().position(|x| x.name == "f").unwrap();
        let u = g.unresolved.get(&f).unwrap();
        assert!(u.contains(".sort_unstable"));
        assert!(u.contains("g"));
        assert!(g.edges.is_empty());
    }

    #[test]
    fn closure_crosses_files_and_respects_prunes() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn root() { mid(); cold(); }"),
            ("crates/b/src/lib.rs", "fn mid() { leaf(); } fn leaf() {} fn cold() { leaf(); }"),
        ]);
        let (roots, missing) = g.select(&[entry("crates/a/src/lib.rs", &["root"])]);
        assert!(missing.is_empty());
        let (pruned, _) = g.select(&[entry("crates/b/src/lib.rs", &["cold"])]);
        let closure = g.closure(&roots, &pruned);
        let ids = g.ids(&closure);
        assert_eq!(
            ids,
            [
                "crates/a/src/lib.rs#root",
                "crates/b/src/lib.rs#leaf",
                "crates/b/src/lib.rs#mid"
            ]
        );
        // Without the prune, cold joins the closure.
        assert_eq!(g.closure(&roots, &BTreeSet::new()).len(), 4);
    }

    #[test]
    fn select_reports_missing_entries() {
        let g = graph(&[("src/a.rs", "fn real() {}")]);
        let (picked, missing) = g.select(&[entry("src/a.rs", &["real", "ghost"])]);
        assert_eq!(picked.len(), 1);
        assert_eq!(missing, [("src/a.rs".to_string(), "ghost".to_string())]);
    }

    #[test]
    fn report_ids_and_edges_are_sorted() {
        let g = graph(&[
            ("src/b.rs", "fn beta() { alpha(); }"),
            ("src/a.rs", "fn alpha() { beta(); }"),
        ]);
        let all: BTreeSet<usize> = (0..g.fns.len()).collect();
        let ids = g.ids(&all);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let edges = g.edge_ids(&all);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(edges.len(), 2);
    }
}
