//! The `netmax-audit` command-line front end.
//!
//! ```text
//! netmax-audit [--deny] [--closure] [--dump-graph] [--json PATH]
//!              [--root DIR] [--policy PATH]
//! ```
//!
//! Scans the workspace against `audit.policy.json`, prints the human
//! report, and optionally writes the versioned JSON report
//! (`netmax-audit/report/v1`). `--closure` recomputes the closure
//! report (`netmax-audit/closure/v1`) and writes it to the committed
//! location `audit.closure.json` at the root — CI then diffs the
//! working tree, so any closure growth must be a reviewed commit.
//! `--dump-graph` prints the whole resolved call graph. Exit status:
//! 0 when clean (or when violations exist but `--deny` was not passed —
//! report-only mode), 1 for violations under `--deny`, 2 for usage or
//! I/O errors.

use netmax_audit::{load_policy, run_audit_full};
use netmax_json::ToJson;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    deny: bool,
    closure: bool,
    dump_graph: bool,
    json: Option<PathBuf>,
    root: Option<PathBuf>,
    policy: Option<PathBuf>,
}

const USAGE: &str = "usage: netmax-audit [--deny] [--closure] [--dump-graph] [--json PATH] \
                     [--root DIR] [--policy PATH]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        closure: false,
        dump_graph: false,
        json: None,
        root: None,
        policy: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--closure" => args.closure = true,
            "--dump-graph" => args.dump_graph = true,
            "--json" => {
                args.json = Some(it.next().ok_or("--json needs a path")?.into());
            }
            "--root" => {
                args.root = Some(it.next().ok_or("--root needs a directory")?.into());
            }
            "--policy" => {
                args.policy = Some(it.next().ok_or("--policy needs a path")?.into());
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Walks up from the current directory to the first one containing
/// `audit.policy.json` — the workspace root.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("audit.policy.json").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("netmax-audit: no audit.policy.json found here or above (try --root)");
            return ExitCode::from(2);
        }
    };
    let policy_path = args.policy.unwrap_or_else(|| root.join("audit.policy.json"));
    let policy = match load_policy(&policy_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("netmax-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match run_audit_full(&root, &policy) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("netmax-audit: {e}");
            return ExitCode::from(2);
        }
    };
    if args.dump_graph {
        print!("{}", outcome.graph.dump());
    }
    print!("{}", outcome.report.human());
    if let Some(json_path) = args.json {
        let text = outcome.report.to_json().pretty();
        if let Err(e) = std::fs::write(&json_path, text) {
            eprintln!("netmax-audit: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if args.closure {
        let closure_path = root.join("audit.closure.json");
        if let Err(e) = std::fs::write(&closure_path, outcome.closures.pretty_text()) {
            eprintln!("netmax-audit: cannot write {}: {e}", closure_path.display());
            return ExitCode::from(2);
        }
        println!(
            "closure report: {} set(s) written to {}",
            outcome.closures.closures.len(),
            closure_path.display()
        );
    }
    if args.deny && !outcome.report.clean() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
