//! `netmax-audit` — the workspace invariant analyzer.
//!
//! The simulation engine's headline guarantees — bit-reproducible runs in
//! virtual time, an allocation-free steady state, panic-free library
//! crates, exhaustive handling of every event and algorithm variant — are
//! enforced dynamically by tests, but tests only cover the paths they
//! drive. This crate adds the static half: a lightweight, comment- and
//! string-aware Rust tokenizer (no full AST, no third-party parser — the
//! same dependency-free discipline as `netmax-json`) that walks every
//! `.rs` file in the workspace and checks a committed rule policy
//! (`audit.policy.json`):
//!
//! * **determinism** — `Instant`/`SystemTime` only in allowlisted bench
//!   timing code; `HashMap`/`HashSet` nowhere in library sources (iteration
//!   order leaks into artifacts);
//! * **hot-path hygiene** — functions registered in the hot-path manifest
//!   must not contain allocation patterns (`vec!`, `.collect`, `.clone`,
//!   `format!`, …);
//! * **panic-freedom ratchet** — per-crate counts of `unwrap`/`expect`/
//!   `panic!`/`unreachable!`/indexing may never exceed the committed
//!   budget, and the budget must be lowered as sites are removed (a
//!   too-high budget is itself a violation);
//! * **cross-file exhaustiveness** — every variant of registered enums
//!   (`StepEvent`, `AlgorithmKind`) must appear, qualified, in the
//!   dispatch, registry, and test files the policy names.
//!
//! Violations are suppressible only with
//! `// audit: allow(<rule>) -- <reason>` on the offending line (or the
//! line above); the reason is mandatory and unused suppressions are
//! errors. Enum-exhaustiveness findings are file-level, so a suppression
//! for that rule anywhere in the affected file covers them.

#![forbid(unsafe_code)]

pub mod enums;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod policy;
pub mod report;
pub mod scan;
pub mod suppress;

pub use graph::CallGraph;
pub use policy::{Policy, POLICY_SCHEMA};
pub use report::{
    AuditReport, BudgetStatus, ClosureInfo, ClosureReport, Violation, CLOSURE_SCHEMA,
    REPORT_SCHEMA,
};

use report::rules;
use scan::{BannedPattern, FileScan, PanicCounts};
use std::collections::BTreeSet;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

/// A fatal analyzer error (I/O or policy parse) — distinct from audit
/// violations, which are findings, not failures of the tool itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// What went wrong, with the path involved.
    pub message: String,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for AuditError {}

fn err(message: impl Into<String>) -> AuditError {
    AuditError { message: message.into() }
}

/// Loads and validates the policy document at `path`.
pub fn load_policy(path: &Path) -> Result<Policy, AuditError> {
    let text = fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read policy {}: {e}", path.display())))?;
    let doc = netmax_json::Json::parse(&text)
        .map_err(|e| err(format!("policy {} is not valid JSON: {e}", path.display())))?;
    netmax_json::FromJson::from_json(&doc)
        .map_err(|e| err(format!("policy {} is malformed: {e}", path.display())))
}

/// Whether a workspace-relative path is *library source* (subject to the
/// determinism, hot-path, and panic rules) as opposed to tests, benches,
/// or examples — which are only consulted for enum-coverage and
/// required-text checks.
pub fn is_source(rel: &str) -> bool {
    rel.starts_with("src/") || rel.contains("/src/")
}

/// Recursively collects every `.rs` file under `root` (skipping `target`,
/// VCS metadata, and the policy's excluded prefixes), returning
/// `(workspace-relative path, contents)` pairs in sorted path order.
pub fn collect_files(root: &Path, exclude: &[String]) -> Result<Vec<(String, String)>, AuditError> {
    let mut rel_paths = Vec::new();
    walk(root, Path::new(""), exclude, &mut rel_paths)?;
    rel_paths.sort();
    let mut files = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        let text = fs::read_to_string(root.join(&rel))
            .map_err(|e| err(format!("cannot read {rel}: {e}")))?;
        files.push((rel, text));
    }
    Ok(files)
}

fn walk(
    root: &Path,
    rel: &Path,
    exclude: &[String],
    out: &mut Vec<String>,
) -> Result<(), AuditError> {
    let dir = root.join(rel);
    let entries = fs::read_dir(&dir)
        .map_err(|e| err(format!("cannot list {}: {e}", dir.display())))?;
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| err(format!("cannot list {}: {e}", dir.display())))?;
        if let Some(name) = entry.file_name().to_str() {
            names.push(name.to_string());
        }
    }
    names.sort();
    for name in names {
        let child_rel = if rel.as_os_str().is_empty() {
            name.clone().into()
        } else {
            rel.join(&name)
        };
        let rel_str = child_rel.to_string_lossy().replace('\\', "/");
        if exclude.iter().any(|p| rel_str.starts_with(p.trim_end_matches('/'))) {
            continue;
        }
        let path = root.join(&child_rel);
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &child_rel, exclude, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_str);
        }
    }
    Ok(())
}

/// Everything one audit run produces: the violation report, the closure
/// report CI diffs against the committed copy, and the resolved call
/// graph (for `--dump-graph`).
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// The violation report.
    pub report: AuditReport,
    /// The computed closures (empty when the policy declares no root
    /// sets, i.e. for v1 documents).
    pub closures: ClosureReport,
    /// The workspace call graph.
    pub graph: CallGraph,
}

/// Runs the full audit of the workspace at `root` under `policy`,
/// returning only the violation report. See [`run_audit_full`] for the
/// closure report and call graph.
pub fn run_audit(root: &Path, policy: &Policy) -> Result<AuditReport, AuditError> {
    run_audit_full(root, policy).map(|o| o.report)
}

/// Runs the full audit of the workspace at `root` under `policy`.
pub fn run_audit_full(root: &Path, policy: &Policy) -> Result<AuditOutcome, AuditError> {
    let banned_patterns: Vec<BannedPattern> = policy
        .hot_path_banned
        .iter()
        .filter_map(|s| BannedPattern::parse(s))
        .collect();
    if banned_patterns.len() != policy.hot_path_banned.len() {
        return Err(err("policy hot_path_banned contains an unparseable pattern"));
    }
    let time_banned: Vec<&str> =
        policy.determinism.time_banned.iter().map(String::as_str).collect();
    let hash_banned: Vec<&str> =
        policy.determinism.hash_banned.iter().map(String::as_str).collect();

    let files = collect_files(root, &policy.exclude)?;
    let mut scans: BTreeMap<String, FileScan> = BTreeMap::new();
    for (rel, text) in files {
        let scan = FileScan::new(rel.clone(), &text);
        scans.insert(rel, scan);
    }

    let mut rep = AuditReport { files_scanned: scans.len(), ..AuditReport::default() };
    // Parallel to each file's suppression list: whether it silenced
    // anything (unused suppressions become violations at the end).
    let mut used: BTreeMap<&str, Vec<bool>> = BTreeMap::new();
    let mut actuals: Vec<PanicCounts> = vec![PanicCounts::default(); policy.panic_budgets.len()];

    for (path, scan) in &scans {
        used.insert(path.as_str(), vec![false; scan.suppressions.len()]);
        for (line, e) in &scan.malformed {
            rep.violations.push(Violation {
                rule: rules::BAD_SUPPRESSION,
                file: path.clone(),
                line: *line,
                message: e.to_string(),
            });
        }
        if !is_source(path) {
            continue;
        }

        // Suppressible line-level candidates: (rule, line, message).
        let mut candidates: Vec<(&'static str, u32, String)> = Vec::new();
        if !Policy::allowlisted(&policy.determinism.time_allowlist, path) {
            for (line, ident) in scan::find_banned_idents(scan, &time_banned) {
                candidates.push((
                    rules::DETERMINISM_TIME,
                    line,
                    format!("real-time clock `{ident}` outside the bench allowlist"),
                ));
            }
        }
        if !Policy::allowlisted(&policy.determinism.hash_allowlist, path) {
            for (line, ident) in scan::find_banned_idents(scan, &hash_banned) {
                candidates.push((
                    rules::DETERMINISM_HASH,
                    line,
                    format!("iteration-order-nondeterministic `{ident}` in library source"),
                ));
            }
        }
        for entry in policy.hot_paths.iter().filter(|e| &e.file == path) {
            let (hits, stale) = scan::scan_hot_paths(scan, &entry.functions, &banned_patterns);
            for (line, func, pat) in hits {
                candidates.push((
                    rules::HOT_PATH_ALLOC,
                    line,
                    format!("`{pat}` inside registered hot path `{func}`"),
                ));
            }
            for func in stale {
                rep.violations.push(Violation {
                    rule: rules::HOT_PATH_MANIFEST,
                    file: path.clone(),
                    line: 0,
                    message: format!("manifest names `{func}` but the file defines no such fn"),
                });
            }
        }

        if let Some(flags) = used.get_mut(path.as_str()) {
            for (rule, line, message) in candidates {
                let matched = scan
                    .suppressions
                    .iter()
                    .position(|s| s.rule == rule && s.covers(line));
                match matched {
                    Some(si) => flags[si] = true,
                    None => rep.violations.push(Violation {
                        rule,
                        file: path.clone(),
                        line,
                        message,
                    }),
                }
            }
        }

        if let Some(bi) = policy
            .panic_budgets
            .iter()
            .position(|b| path.strip_prefix(&b.crate_dir).is_some_and(|r| r.starts_with('/')))
        {
            actuals[bi].add(&scan::count_panic_sites(scan));
        }
    }

    // The call-graph layer: parse items out of every library source
    // file, resolve calls, and (for v2 policies) enforce the per-closure
    // rules over everything reachable from the declared root sets.
    let mut fns = Vec::new();
    for (path, scan) in &scans {
        if is_source(path) {
            fns.extend(items::parse_items(scan));
        }
    }
    let call_graph = CallGraph::build(fns);
    let mut closures = ClosureReport::default();
    if !policy.root_sets.is_empty() {
        closure_checks(policy, &scans, &call_graph, &mut rep, &mut used, &mut closures);
    }
    closures.finish();

    check_enums(policy, &scans, &mut rep, &mut used);
    check_required_text(policy, &scans, &mut rep);
    check_budgets(policy, &actuals, &mut rep);

    for (path, flags) in &used {
        let scan = &scans[*path];
        for (si, was_used) in flags.iter().enumerate() {
            if !was_used {
                let s = &scan.suppressions[si];
                rep.violations.push(Violation {
                    rule: rules::STALE_SUPPRESSION,
                    file: (*path).to_string(),
                    line: s.line,
                    message: format!("suppression `allow({})` silences nothing", s.rule),
                });
            }
            rep.suppressions_used += usize::from(*was_used);
        }
    }

    rep.finish();
    Ok(AuditOutcome { report: rep, closures, graph: call_graph })
}

/// Enforces the per-closure rules for every policy root set and fills
/// the closure report.
///
/// Closure findings are keyed by `(file, line, rule, message)` before
/// they become violations, so a function belonging to several closures
/// is reported once per offending site, not once per closure. A closure
/// finding honors either its own rule's suppression or the matching
/// per-file rule's (`determinism-time`/`-hash` for closure-determinism,
/// `hot-path-alloc` for closure-alloc) — one allow-comment covers both
/// layers. The closure panic budget and the tier-isolation rule are not
/// suppressible: the committed budget (resp. a reviewed policy `prune`)
/// is the escape hatch.
fn closure_checks<'a>(
    policy: &Policy,
    scans: &'a BTreeMap<String, FileScan>,
    graph: &CallGraph,
    rep: &mut AuditReport,
    used: &mut BTreeMap<&'a str, Vec<bool>>,
    out: &mut ClosureReport,
) {
    let time_banned: Vec<&str> =
        policy.determinism.time_banned.iter().map(String::as_str).collect();
    let hash_banned: Vec<&str> =
        policy.determinism.hash_banned.iter().map(String::as_str).collect();
    let banned_patterns: Vec<BannedPattern> =
        policy.hot_path_banned.iter().filter_map(|s| BannedPattern::parse(s)).collect();

    // (file, line, rule, alternate suppressible rule, message)
    let mut candidates: BTreeSet<(String, u32, &'static str, &'static str, String)> =
        BTreeSet::new();

    // Saved for rule 5 (tier isolation) after the per-set loop.
    let mut strict_closure: Option<BTreeSet<usize>> = None;
    let mut fast_closure: Option<BTreeSet<usize>> = None;

    for set in &policy.root_sets {
        // The legacy v1 manifest rides along as extra hot_path roots, so
        // a half-migrated policy loses no coverage.
        let mut root_entries = set.roots.clone();
        if set.name == "hot_path" {
            root_entries.extend(policy.hot_paths.iter().cloned());
        }
        let (roots, missing) = graph.select(&root_entries);
        let (pruned, missing_prune) = graph.select(&set.prune);
        for (kind, misses) in [("root", missing), ("prune", missing_prune)] {
            for (file, func) in misses {
                rep.violations.push(Violation {
                    rule: rules::POLICY_TARGET,
                    file,
                    line: 0,
                    message: format!(
                        "root set `{}` {kind} names `{func}` but the file defines no such fn",
                        set.name
                    ),
                });
            }
        }
        let closure = graph.closure(&roots, &pruned);
        if set.name == "strict_numerics" {
            strict_closure = Some(closure.clone());
        } else if set.name == "fast_numerics" {
            fast_closure = Some(closure.clone());
        }
        out.closures.push(ClosureInfo {
            name: set.name.clone(),
            roots: graph.ids(&roots),
            functions: graph.ids(&closure),
            edges: graph.edge_ids(&closure),
            unresolved: graph.unresolved_in(&closure),
        });

        // Rule 1 — determinism, in *every* closure: no real-time clocks,
        // no iteration-order-nondeterministic containers, no allowlist.
        for &i in &closure {
            let f = &graph.fns[i];
            let Some((open, close)) = f.body else { continue };
            let Some(scan) = scans.get(&f.file) else { continue };
            for (line, ident) in scan::find_banned_idents_in(scan, open, close, &time_banned) {
                candidates.insert((
                    f.file.clone(),
                    line,
                    rules::CLOSURE_DETERMINISM,
                    rules::DETERMINISM_TIME,
                    format!("real-time clock `{ident}` in closure member `{}`", f.qual()),
                ));
            }
            for (line, ident) in scan::find_banned_idents_in(scan, open, close, &hash_banned) {
                candidates.insert((
                    f.file.clone(),
                    line,
                    rules::CLOSURE_DETERMINISM,
                    rules::DETERMINISM_HASH,
                    format!("nondeterministic container `{ident}` in closure member `{}`", f.qual()),
                ));
            }
        }

        // Rule 2 — the allocation ban over the hot_path closure.
        if set.name == "hot_path" {
            for &i in &closure {
                let f = &graph.fns[i];
                let Some((open, close)) = f.body else { continue };
                let Some(scan) = scans.get(&f.file) else { continue };
                for (line, pat) in
                    scan::find_banned_patterns_in(scan, open, close, &banned_patterns)
                {
                    candidates.insert((
                        f.file.clone(),
                        line,
                        rules::CLOSURE_ALLOC,
                        rules::HOT_PATH_ALLOC,
                        format!("`{pat}` in hot_path-closure member `{}`", f.qual()),
                    ));
                }
            }
        }

        // Rule 3 — the panic ratchet over a closure. Any set may carry a
        // `budget`; `step_loop` falls back to the legacy top-level
        // `step_loop_budget`. Sites are keyed by token index so nested
        // bodies never double-count.
        let budget = set.budget.as_ref().or_else(|| {
            (set.name == "step_loop").then_some(policy.step_loop_budget.as_ref()).flatten()
        });
        if let Some(budget) = budget {
            let mut seen: BTreeSet<(&str, usize)> = BTreeSet::new();
            let mut actual = PanicCounts::default();
            for &i in &closure {
                let f = &graph.fns[i];
                let Some((open, close)) = f.body else { continue };
                let Some(scan) = scans.get(&f.file) else { continue };
                for (idx, category) in scan::panic_sites_in(scan, open, close) {
                    if seen.insert((f.file.as_str(), idx)) {
                        actual.bump(category);
                    }
                }
            }
            let crate_dir = format!("closure:{}", set.name);
            rep.budgets.push(BudgetStatus {
                crate_dir: crate_dir.clone(),
                actual,
                budget: *budget,
            });
            if let Some(over) = actual.exceeds(budget) {
                rep.violations.push(Violation {
                    rule: rules::CLOSURE_PANIC_BUDGET,
                    file: crate_dir.clone(),
                    line: 0,
                    message: format!("panic sites over the closure budget: {over}"),
                });
            }
            if let Some(slack) = budget.exceeds(&actual) {
                rep.violations.push(Violation {
                    rule: rules::CLOSURE_PANIC_BUDGET_STALE,
                    file: crate_dir,
                    line: 0,
                    message: format!("closure budget above actual count, lower it: {slack}"),
                });
            }
        }

        // Rule 4 — the reassociation boundary: every numeric-helper call
        // out of the strict_numerics closure must be on the approved
        // list. "Numeric helper" means a function defined in one of the
        // boundary modules, or an unresolved call with a float-intrinsic
        // name (`.exp(…)`, `.mul_add(…)` resolve to nothing in the
        // workspace but are exactly the calls a fast-math tier rewires).
        if set.name == "strict_numerics" {
            if let Some(re) = &policy.reassociation {
                let boundary: BTreeSet<&str> = graph
                    .fns
                    .iter()
                    .filter(|f| re.modules.contains(&f.file))
                    .map(|f| f.name.as_str())
                    .collect();
                for &i in &closure {
                    let f = &graph.fns[i];
                    for site in &f.calls {
                        let name = site.call.name();
                        let numeric = boundary.contains(name)
                            || re.intrinsics.iter().any(|x| x == name);
                        if numeric && !re.approved.iter().any(|a| a == name) {
                            candidates.insert((
                                f.file.clone(),
                                site.line,
                                rules::REASSOCIATION_BOUNDARY,
                                rules::REASSOCIATION_BOUNDARY,
                                format!(
                                    "`{}` called from strict_numerics member `{}` is not an \
                                     approved numeric helper",
                                    site.call.display(),
                                    f.qual()
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // Rule 5 — tier isolation: the strict and fast numerics closures
    // must be disjoint. A function reachable from both roots is a shared
    // numeric helper, and an edit aimed at the reassociated tier would
    // silently move strict-tier bits through it. Like the closure panic
    // budget this is not suppressible: the fix is duplicating the helper
    // into the fast module or recording a false edge as a reviewed
    // `prune` entry in the committed policy.
    if let (Some(strict), Some(fast)) = (&strict_closure, &fast_closure) {
        for &i in strict.intersection(fast) {
            let f = &graph.fns[i];
            rep.violations.push(Violation {
                rule: rules::TIER_ISOLATION,
                file: f.file.clone(),
                line: f.line,
                message: format!(
                    "`{}` is reachable from both the strict_numerics and fast_numerics \
                     roots — the tiers must not share numeric code",
                    f.qual()
                ),
            });
        }
    }

    for (file, line, rule, alt, message) in candidates {
        let Some(scan) = scans.get(&file) else { continue };
        let matched = scan
            .suppressions
            .iter()
            .position(|s| (s.rule == rule || s.rule == alt) && s.covers(line));
        match matched {
            Some(si) => {
                if let Some(flags) = used.get_mut(file.as_str()) {
                    flags[si] = true;
                }
            }
            None => rep.violations.push(Violation { rule, file, line, message }),
        }
    }
}

/// Enum exhaustiveness: every variant of each registered enum must appear
/// qualified in every `each` file, and in at least one `union` file.
/// Findings are file-level (line 0); an `enum-exhaustive` suppression
/// anywhere in the affected file covers them.
fn check_enums<'a>(
    policy: &Policy,
    scans: &'a BTreeMap<String, FileScan>,
    rep: &mut AuditReport,
    used: &mut BTreeMap<&'a str, Vec<bool>>,
) {
    for check in &policy.enums {
        let Some(decl_scan) = scans.get(&check.decl) else {
            rep.violations.push(Violation {
                rule: rules::POLICY_TARGET,
                file: check.decl.clone(),
                line: 0,
                message: format!("enum check `{}`: decl file not found", check.name),
            });
            continue;
        };
        let Some(variants) = enums::enum_variants(decl_scan, &check.name) else {
            rep.violations.push(Violation {
                rule: rules::POLICY_TARGET,
                file: check.decl.clone(),
                line: 0,
                message: format!("file declares no `enum {}`", check.name),
            });
            continue;
        };
        let mut misses: Vec<(String, String)> = Vec::new();
        for file in &check.each {
            let Some(scan) = scans.get(file) else {
                rep.violations.push(Violation {
                    rule: rules::POLICY_TARGET,
                    file: file.clone(),
                    line: 0,
                    message: format!("enum check `{}`: file not found", check.name),
                });
                continue;
            };
            let same_file = file == &check.decl;
            for v in &variants {
                if !enums::variant_appears(scan, &check.name, v, same_file) {
                    misses.push((
                        file.clone(),
                        format!("`{}::{v}` never named here (dispatch incomplete?)", check.name),
                    ));
                }
            }
        }
        if !check.union.is_empty() {
            let union_scans: Vec<&FileScan> =
                check.union.iter().filter_map(|f| scans.get(f)).collect();
            if union_scans.len() != check.union.len() {
                for file in check.union.iter().filter(|f| !scans.contains_key(*f)) {
                    rep.violations.push(Violation {
                        rule: rules::POLICY_TARGET,
                        file: file.clone(),
                        line: 0,
                        message: format!("enum check `{}`: file not found", check.name),
                    });
                }
            }
            for v in &variants {
                if !union_scans.iter().any(|s| enums::variant_appears(s, &check.name, v, false)) {
                    misses.push((
                        check.union.join(", "),
                        format!("`{}::{v}` covered by none of the union files", check.name),
                    ));
                }
            }
        }
        for (file, message) in misses {
            // File-level suppression: any `enum-exhaustive` allow in the
            // affected file covers its findings for this rule.
            let suppressed = scans.get(&file).is_some_and(|s| {
                s.suppressions.iter().enumerate().any(|(si, sup)| {
                    if sup.rule == rules::ENUM_EXHAUSTIVE {
                        if let Some(flags) = used.get_mut(file.as_str()) {
                            flags[si] = true;
                        }
                        true
                    } else {
                        false
                    }
                })
            });
            if !suppressed {
                rep.violations.push(Violation {
                    rule: rules::ENUM_EXHAUSTIVE,
                    file,
                    line: 0,
                    message,
                });
            }
        }
    }
}

fn check_required_text(
    policy: &Policy,
    scans: &BTreeMap<String, FileScan>,
    rep: &mut AuditReport,
) {
    for req in &policy.required_text {
        match scans.get(&req.file) {
            None => rep.violations.push(Violation {
                rule: rules::POLICY_TARGET,
                file: req.file.clone(),
                line: 0,
                message: "required_text: file not found".into(),
            }),
            Some(scan) if !scan.raw.contains(&req.needle) => {
                rep.violations.push(Violation {
                    rule: rules::REQUIRED_TEXT,
                    file: req.file.clone(),
                    line: 0,
                    message: format!("required text `{}` is missing", req.needle),
                });
            }
            Some(_) => {}
        }
    }
}

/// The two-way ratchet: counts above budget are violations, and so are
/// budgets above counts — the committed number must fall as panic sites
/// are removed, so the budget can only ever go down.
fn check_budgets(policy: &Policy, actuals: &[PanicCounts], rep: &mut AuditReport) {
    for (budget, actual) in policy.panic_budgets.iter().zip(actuals) {
        let committed = PanicCounts {
            unwrap: budget.unwrap,
            expect: budget.expect,
            panic: budget.panic,
            unreachable: budget.unreachable,
            index: budget.index,
        };
        rep.budgets.push(BudgetStatus {
            crate_dir: budget.crate_dir.clone(),
            actual: *actual,
            budget: committed,
        });
        if let Some(over) = actual.exceeds(&committed) {
            rep.violations.push(Violation {
                rule: rules::PANIC_BUDGET,
                file: budget.crate_dir.clone(),
                line: 0,
                message: format!("panic sites over budget: {over}"),
            });
        }
        if let Some(slack) = committed.exceeds(actual) {
            rep.violations.push(Violation {
                rule: rules::PANIC_BUDGET_STALE,
                file: budget.crate_dir.clone(),
                line: 0,
                message: format!("budget above actual count, lower it: {slack}"),
            });
        }
    }
}
