//! Cross-file enum exhaustiveness: parse an enum declaration out of one
//! file and verify every variant is *named* (as `Enum::Variant`) in the
//! dispatch, registry, and test files the policy points at.
//!
//! This is the static companion to the engine's wildcard-free `match`
//! style: a `match` with a `_` arm compiles silently when a new
//! `StepEvent` variant lands, and a registry list can simply forget one.
//! Requiring the qualified variant name to appear in each named file (or
//! across a *union* of test files) turns those omissions into audit
//! failures with a file name attached.

use crate::lexer::Tok;
use crate::scan::FileScan;

/// Extracts the variant names of `enum name { … }` from a lexed file.
/// Returns `None` when the file declares no such enum.
pub fn enum_variants(scan: &FileScan, name: &str) -> Option<Vec<String>> {
    let toks = &scan.tokens;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if let (Tok::Ident(kw), Tok::Ident(n)) = (&toks[i].tok, &toks[i + 1].tok) {
            if kw == "enum" && n == name {
                // Skip optional generics to the opening brace.
                let mut j = i + 2;
                while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{')) {
                    j += 1;
                }
                return Some(parse_variants(scan, j));
            }
        }
        i += 1;
    }
    None
}

/// Parses variant names from the enum body opening at `open` (a `{`
/// token): each variant is the first identifier at brace-depth 1 after
/// `{` or a depth-1 `,`, with attributes (`#[…]`) skipped.
fn parse_variants(scan: &FileScan, open: usize) -> Vec<String> {
    let toks = &scan.tokens;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut bracket_depth = 0i32;
    let mut paren_depth = 0i32;
    let mut expect_variant = false;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') => {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
            }
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Punct('[') => bracket_depth += 1,
            Tok::Punct(']') => bracket_depth -= 1,
            Tok::Punct('(') => paren_depth += 1,
            Tok::Punct(')') => paren_depth -= 1,
            Tok::Punct(',') if depth == 1 && bracket_depth == 0 && paren_depth == 0 => {
                expect_variant = true;
            }
            Tok::Punct('#') => {} // attribute marker; its `[…]` is skipped
            Tok::Ident(s) if expect_variant && depth == 1 && bracket_depth == 0 => {
                variants.push(s.clone());
                expect_variant = false;
            }
            _ => {}
        }
        j += 1;
    }
    variants
}

/// Whether `Enum::Variant` (or, for `same_file`, `Self::Variant`) appears
/// anywhere in the file — test regions included, since restore *tests*
/// are legitimate appearance sites.
pub fn variant_appears(scan: &FileScan, enum_name: &str, variant: &str, same_file: bool) -> bool {
    let toks = &scan.tokens;
    for i in 0..toks.len() {
        if let Tok::Ident(head) = &toks[i].tok {
            let head_ok = head == enum_name || (same_file && head == "Self");
            if head_ok
                && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
                && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(v)) if v == variant)
            {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileScan {
        FileScan::new("enums.rs", src)
    }

    #[test]
    fn unit_tuple_and_struct_variants_parse() {
        let src = r#"
            /// Docs.
            pub enum Event {
                /// A unit variant.
                Started,
                #[allow(dead_code)]
                Progress(u64, f64),
                Done { code: i32, msg: String },
            }
        "#;
        let v = enum_variants(&scan(src), "Event").unwrap();
        assert_eq!(v, ["Started", "Progress", "Done"]);
    }

    #[test]
    fn nested_payload_commas_do_not_split_variants() {
        let src = "enum E { A { xs: [u8; 4], f: fn(u8, u8) -> u8 }, B(Vec<(u8, u8)>), C }";
        let v = enum_variants(&scan(src), "E").unwrap();
        assert_eq!(v, ["A", "B", "C"]);
    }

    #[test]
    fn discriminant_values_are_not_variants() {
        let v = enum_variants(&scan("enum E { A = 1, B = 2 }"), "E").unwrap();
        assert_eq!(v, ["A", "B"]);
    }

    #[test]
    fn generic_enums_parse() {
        let v = enum_variants(&scan("enum Tree<T: Ord> { Leaf(T), Node { l: u8 } }"), "Tree")
            .unwrap();
        assert_eq!(v, ["Leaf", "Node"]);
    }

    #[test]
    fn missing_enum_is_none() {
        assert_eq!(enum_variants(&scan("struct S;"), "E"), None);
    }

    #[test]
    fn appearance_requires_qualified_path() {
        let s = scan("fn f(e: E) { match e { E::A => {} , _ => {} } } // E::B in a comment");
        assert!(variant_appears(&s, "E", "A", false));
        assert!(!variant_appears(&s, "E", "B", false), "comments must not count");
    }

    #[test]
    fn self_qualification_counts_only_in_decl_file() {
        let s = scan("impl E { fn f(&self) -> E { Self::A } }");
        assert!(variant_appears(&s, "E", "A", true));
        assert!(!variant_appears(&s, "E", "A", false));
    }
}
