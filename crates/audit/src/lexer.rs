//! A lightweight Rust source tokenizer: comment-, string-, and
//! char-literal-aware, line-tracked, and panic-free.
//!
//! This is deliberately *not* a full lexer for the Rust grammar — the
//! audit rules only need to see identifiers and punctuation with the
//! noise (comments, string contents, char literals, numbers) stripped
//! out, so a banned name inside a string literal or a doc comment never
//! counts as a violation. The subtle cases it does handle exactly:
//!
//! * nested block comments (`/* /* */ */`);
//! * raw strings with any hash depth (`r#"…"#`, `br##"…"##`);
//! * byte strings and byte chars (`b"…"`, `b'x'`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escaped
//!   quotes (`'\''`);
//! * raw identifiers (`r#type`).
//!
//! Line comments are returned alongside the token stream so the
//! suppression layer (`// audit: allow(…) -- reason`) can see them.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (multi-char operators arrive as
    /// consecutive tokens, e.g. `::` is two `Punct(':')`).
    Punct(char),
    /// A numeric literal (value discarded — rules never need it).
    Num,
}

/// A token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A `//` line comment (text after the slashes, untrimmed) with its line.
#[derive(Debug, Clone, PartialEq)]
pub struct LineComment {
    /// 1-based line number the comment sits on.
    pub line: u32,
    /// Everything after the leading `//`.
    pub text: String,
}

/// The full output of lexing one file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// The token stream, noise stripped.
    pub tokens: Vec<Token>,
    /// Every `//` line comment, for the suppression parser.
    pub comments: Vec<LineComment>,
}

/// Tokenizes Rust source. Total: accepts arbitrary (even invalid) input
/// and never panics — unterminated constructs simply end at EOF.
pub fn lex(src: &str) -> Lexed {
    Lexer { bytes: src.as_bytes(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte length of the UTF-8 scalar whose leading byte is `b`. Invalid
/// leading bytes report 1 so the lexer always makes progress.
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    self.out.tokens.push(Token { tok: Tok::Punct(b as char), line: self.line });
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, keeping the line counter honest.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        self.pos += 2;
        let text_start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[text_start..self.pos]).into_owned();
        self.out.comments.push(LineComment { line: start_line, text });
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
    }

    /// A regular `"…"` string (escape-aware). The contents are discarded.
    fn string(&mut self) {
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// A raw string starting at the current `r`/`br` position: `r#*"…"#*`.
    /// Returns false (position untouched) if the lookahead is not actually
    /// a raw string opener.
    fn try_raw_string(&mut self, prefix_len: usize) -> bool {
        let mut hashes = 0usize;
        while self.peek(prefix_len + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(prefix_len + hashes) != Some(b'"') {
            return false;
        }
        self.pos += prefix_len + hashes + 1;
        // Scan for `"` followed by `hashes` hash marks.
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut k = 0usize;
                while k < hashes && self.peek(1 + k) == Some(b'#') {
                    k += 1;
                }
                if k == hashes {
                    self.pos += 1 + hashes;
                    return true;
                }
            }
            self.bump();
        }
        true
    }

    /// `'a'`, `'\n'`, `b'x'` char literals vs. `'a` lifetimes. Called with
    /// the cursor on the opening quote.
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            // Escaped char literal: consume through the closing quote.
            Some(b'\\') => {
                self.pos += 2;
                if self.peek(0).is_some() {
                    self.bump(); // the escaped character itself
                }
                while let Some(b) = self.peek(0) {
                    // Multi-char escapes (`'\u{1F600}'`, `'\x7f'`) run to
                    // the closing quote.
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
            }
            // `'a` / `'static` lifetime: an identifier follows with no
            // closing quote right after one *character* — measured in
            // UTF-8 bytes, so `'é'` (a 2-byte scalar) is a char literal,
            // not a lifetime that would desynchronize on the stray quote.
            Some(b)
                if is_ident_start(b)
                    && self.peek(1 + utf8_len(b)) != Some(b'\'') =>
            {
                self.pos += 2;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
            }
            // Plain char literal `'x'` (possibly multi-byte UTF-8).
            Some(_) => {
                self.pos += 1;
                while let Some(b) = self.peek(0) {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
            }
            None => self.pos += 1,
        }
    }

    /// A numeric literal; the exact value is irrelevant to every rule, so
    /// digits, type suffixes, and a single decimal point are consumed into
    /// one `Num`. `1..n` stops before the range dots.
    fn number(&mut self) {
        let line = self.line;
        let mut seen_dot = false;
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else if b == b'.'
                && !seen_dot
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
            {
                seen_dot = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        self.out.tokens.push(Token { tok: Tok::Num, line });
    }

    /// An identifier — or a string literal with an `r`/`b`/`br` prefix, or
    /// a raw identifier `r#name`.
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let ident = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        let prefix_len = self.pos - start;
        match ident.as_str() {
            // `b'x'` byte char.
            "b" if self.peek(0) == Some(b'\'') => self.char_or_lifetime(),
            // `b"…"` byte string — escape-aware, unlike the raw forms.
            "b" if self.peek(0) == Some(b'"') => self.string(),
            // `r"…"` and `br#"…"#` raw string forms. `try_raw_string`
            // leaves the position alone when this is a plain identifier
            // followed by `#` (e.g. a raw identifier).
            "r" | "br" => {
                self.pos = start;
                if self.try_raw_string(prefix_len) {
                    return;
                }
                self.pos = start + prefix_len;
                // `r#type` raw identifier: skip the hash, lex the name.
                if ident == "r" && self.peek(0) == Some(b'#') {
                    let name_start = self.pos + 1;
                    if self.peek(1).is_some_and(is_ident_start) {
                        self.pos += 1;
                        while self.peek(0).is_some_and(is_ident_continue) {
                            self.pos += 1;
                        }
                        let name =
                            String::from_utf8_lossy(&self.bytes[name_start..self.pos]).into_owned();
                        self.out.tokens.push(Token { tok: Tok::Ident(name), line });
                        return;
                    }
                }
                self.out.tokens.push(Token { tok: Tok::Ident(ident), line });
            }
            _ => self.out.tokens.push(Token { tok: Tok::Ident(ident), line }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* Instant in /* a nested */ block */
            let x = "HashMap::new() Instant";
            let y = r#"SystemTime"# ;
            let z = 'I';
        "##;
        let ids = idents(src);
        assert_eq!(ids, ["let", "x", "let", "y", "let", "z"]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_string()));
        assert!(!ids.contains(&"a".to_string()), "{ids:?}");
    }

    #[test]
    fn char_literals_with_escapes() {
        let ids = idents(r"let q = '\''; let n = '\n'; let u = '\u{1F600}'; after");
        assert!(ids.contains(&"after".to_string()), "{ids:?}");
    }

    #[test]
    fn raw_identifiers_and_byte_strings() {
        let ids = idents(r##"let r#type = b"bytes"; let b = br#"raw"#; r"plain";"##);
        assert_eq!(ids, ["let", "type", "let", "b"]);
    }

    #[test]
    fn line_numbers_track_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 1;\n/* c\nd */ let e = 2;";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.tok == Tok::Ident("b".into())).unwrap();
        assert_eq!(b.line, 3);
        let e = lexed.tokens.iter().find(|t| t.tok == Tok::Ident("e".into())).unwrap();
        assert_eq!(e.line, 5);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lexed = lex("let a = 1; // audit: allow(x) -- y\n// plain\n");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("audit: allow"));
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        let lexed = lex("for i in 0..n { a[i] = 1.5e-3; }");
        let puncts: Vec<char> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert!(puncts.windows(2).any(|w| w == ['.', '.']), "{puncts:?}");
    }

    /// Regression: a quote *inside* a raw string must not desynchronize
    /// masking — everything after the true closing delimiter is code.
    #[test]
    fn raw_strings_with_inner_quotes_do_not_desync() {
        let cases = [
            "let y = r#\"a \" b\"#; let t = Instant::now();",
            "let y = r\"a\\\"; let t = Instant::now();", // `\` is literal in raw strings
            "let y = br##\"x \"# y\"##; let t = Instant::now();",
            "let s = r#\"/* \"#; let t = Instant::now();", // comment opener inside raw string
            "let s = r#\"\"#; let t = Instant::now();",    // empty raw string
        ];
        for src in cases {
            assert!(idents(src).contains(&"Instant".to_string()), "desync on {src:?}");
        }
        // And the converse: contents of a raw string never leak as tokens.
        assert!(!idents("let y = r##\"Instant SystemTime\"##;").contains(&"Instant".to_string()));
    }

    /// Regression: inner `/* */` pairs inside block comments nest like
    /// rustc's, and quotes inside comments do not open strings.
    #[test]
    fn nested_block_comments_do_not_desync() {
        let cases = [
            "/* a /* b */ c */ let t = Instant::now();",
            "/* \" */ let t = Instant::now(); /* \" */",
            "/* /*/ */ */ let t = Instant::now();",
            "/** doc /* inner */ still doc */ let t = Instant::now();",
        ];
        for src in cases {
            let ids = idents(src);
            assert!(ids.contains(&"Instant".to_string()), "desync on {src:?}");
            assert!(!ids.contains(&"a".to_string()) && !ids.contains(&"doc".to_string()));
        }
        // Unbalanced inner opener comments out the rest of the file.
        assert!(!idents("/* a /* b */ let t = Instant::now();").contains(&"Instant".to_string()));
    }

    /// Regression: a multi-byte char literal is a char literal, not a
    /// lifetime — the old byte-offset check misread `'é'` as `'é` + a
    /// stray quote that swallowed the rest of the line.
    #[test]
    fn multibyte_char_literals_are_not_lifetimes() {
        let ids = idents("let c = 'é'; let t = Instant::now();");
        assert!(ids.contains(&"Instant".to_string()), "{ids:?}");
        let ids = idents("let c = '\u{1F600}'; let t = Instant::now();");
        assert!(ids.contains(&"Instant".to_string()), "{ids:?}");
        // Lifetimes still lex as lifetimes, including non-ASCII ones.
        let ids = idents("fn f<'é>(x: &'é str) -> &'é str { x } Instant");
        assert!(ids.contains(&"Instant".to_string()), "{ids:?}");
    }

    #[test]
    fn garbage_never_panics() {
        for bad in ["\"unterminated", "/* open", "'", "r#\"open", "b'", "1.", "'\\", "r#"] {
            let _ = lex(bad);
        }
    }
}
