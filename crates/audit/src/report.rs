//! Audit results: the violation list, the human rendering, and the
//! versioned machine report (`netmax-audit/report/v1`).

use crate::scan::PanicCounts;
use netmax_json::{Json, ToJson};
use std::fmt::Write as _;

/// Schema tag of the JSON report.
pub const REPORT_SCHEMA: &str = "netmax-audit/report/v1";

/// Rule identifiers, as they appear in reports and suppression comments.
pub mod rules {
    /// Real-time clock (`Instant`/`SystemTime`) outside the allowlist.
    pub const DETERMINISM_TIME: &str = "determinism-time";
    /// Iteration-order-nondeterministic container outside the allowlist.
    pub const DETERMINISM_HASH: &str = "determinism-hash";
    /// Banned allocation pattern inside a registered hot-path body.
    pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
    /// Hot-path manifest names a function the file no longer defines.
    pub const HOT_PATH_MANIFEST: &str = "hot-path-manifest";
    /// Panic-site count above the committed budget.
    pub const PANIC_BUDGET: &str = "panic-budget";
    /// Budget higher than the actual count — the ratchet must be lowered.
    pub const PANIC_BUDGET_STALE: &str = "panic-budget-stale";
    /// Enum variant missing from a required dispatch/registry/test file.
    pub const ENUM_EXHAUSTIVE: &str = "enum-exhaustive";
    /// Required raw text missing from a file.
    pub const REQUIRED_TEXT: &str = "required-text";
    /// `audit:` comment that does not parse as a valid directive.
    pub const BAD_SUPPRESSION: &str = "bad-suppression";
    /// Well-formed suppression that silenced nothing.
    pub const STALE_SUPPRESSION: &str = "stale-suppression";
    /// Policy points at a file that does not exist or declares no such
    /// enum/function.
    pub const POLICY_TARGET: &str = "policy-target";
}

/// One audit violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (see [`rules`]).
    pub rule: &'static str,
    /// Workspace-relative file, or `<policy>` for policy-level findings.
    pub file: String,
    /// 1-based line, or 0 when the finding is file- or crate-level.
    pub line: u32,
    /// Human explanation.
    pub message: String,
}

impl Violation {
    /// Location string: `file:line` or just `file` for line 0.
    pub fn locus(&self) -> String {
        if self.line == 0 {
            self.file.clone()
        } else {
            format!("{}:{}", self.file, self.line)
        }
    }
}

/// One crate's ratchet status in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetStatus {
    /// The crate directory the budget applies to.
    pub crate_dir: String,
    /// Counted panic sites.
    pub actual: PanicCounts,
    /// Committed budget.
    pub budget: PanicCounts,
}

/// The full audit outcome.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Suppressions that silenced at least one violation.
    pub suppressions_used: usize,
    /// Per-crate ratchet state (always reported, violations or not).
    pub budgets: Vec<BudgetStatus>,
    /// Unsuppressed violations, sorted by `(file, line, rule)`.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Whether the audit passed.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Sorts violations into the deterministic report order.
    pub fn finish(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// The human-readable report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "netmax-audit: {} file(s) scanned, {} suppression(s) in use",
            self.files_scanned, self.suppressions_used
        );
        for b in &self.budgets {
            let _ = writeln!(
                out,
                "  ratchet {:<16} unwrap {}/{}  expect {}/{}  panic {}/{}  unreachable {}/{}  index {}/{}",
                b.crate_dir,
                b.actual.unwrap,
                b.budget.unwrap,
                b.actual.expect,
                b.budget.expect,
                b.actual.panic,
                b.budget.panic,
                b.actual.unreachable,
                b.budget.unreachable,
                b.actual.index,
                b.budget.index,
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "PASS: no violations");
        } else {
            let _ = writeln!(out, "FAIL: {} violation(s)", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  [{}] {}: {}", v.rule, v.locus(), v.message);
            }
        }
        out
    }
}

fn counts_json(c: &PanicCounts) -> Json {
    Json::obj([
        ("unwrap", c.unwrap.to_json()),
        ("expect", c.expect.to_json()),
        ("panic", c.panic.to_json()),
        ("unreachable", c.unreachable.to_json()),
        ("index", c.index.to_json()),
    ])
}

impl ToJson for AuditReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(REPORT_SCHEMA.into())),
            ("pass", self.clean().to_json()),
            ("files_scanned", self.files_scanned.to_json()),
            ("suppressions_used", self.suppressions_used.to_json()),
            (
                "budgets",
                Json::Arr(
                    self.budgets
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("crate", b.crate_dir.to_json()),
                                ("actual", counts_json(&b.actual)),
                                ("budget", counts_json(&b.budget)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::obj([
                                ("rule", v.rule.to_json()),
                                ("file", v.file.to_json()),
                                ("line", (v.line as usize).to_json()),
                                ("message", v.message.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AuditReport {
        let mut r = AuditReport {
            files_scanned: 3,
            suppressions_used: 1,
            budgets: vec![BudgetStatus {
                crate_dir: "crates/json".into(),
                actual: PanicCounts { unwrap: 1, ..PanicCounts::default() },
                budget: PanicCounts { unwrap: 2, ..PanicCounts::default() },
            }],
            violations: vec![
                Violation {
                    rule: rules::DETERMINISM_TIME,
                    file: "b.rs".into(),
                    line: 9,
                    message: "Instant".into(),
                },
                Violation {
                    rule: rules::PANIC_BUDGET,
                    file: "a.rs".into(),
                    line: 0,
                    message: "over".into(),
                },
            ],
        };
        r.finish();
        r
    }

    #[test]
    fn violations_sort_deterministically() {
        let r = report();
        assert_eq!(r.violations[0].file, "a.rs");
        assert!(!r.clean());
    }

    #[test]
    fn json_report_has_schema_and_violations() {
        let doc = report().to_json();
        assert_eq!(doc.field("schema").unwrap().as_str().unwrap(), REPORT_SCHEMA);
        assert!(!doc.field("pass").unwrap().as_bool().unwrap());
        assert_eq!(doc.field("violations").unwrap().as_arr().unwrap().len(), 2);
        let text = doc.pretty();
        assert!(text.contains("determinism-time"));
    }

    #[test]
    fn human_report_mentions_every_violation() {
        let text = report().human();
        assert!(text.contains("FAIL: 2 violation(s)"));
        assert!(text.contains("b.rs:9"));
        assert!(text.contains("ratchet crates/json"));
    }
}
