//! Audit results: the violation list, the human rendering, and the
//! versioned machine report (`netmax-audit/report/v1`).

use crate::scan::PanicCounts;
use netmax_json::{Json, ToJson};
use std::fmt::Write as _;

/// Schema tag of the JSON report.
pub const REPORT_SCHEMA: &str = "netmax-audit/report/v1";

/// Rule identifiers, as they appear in reports and suppression comments.
pub mod rules {
    /// Real-time clock (`Instant`/`SystemTime`) outside the allowlist.
    pub const DETERMINISM_TIME: &str = "determinism-time";
    /// Iteration-order-nondeterministic container outside the allowlist.
    pub const DETERMINISM_HASH: &str = "determinism-hash";
    /// Banned allocation pattern inside a registered hot-path body.
    pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
    /// Hot-path manifest names a function the file no longer defines.
    pub const HOT_PATH_MANIFEST: &str = "hot-path-manifest";
    /// Panic-site count above the committed budget.
    pub const PANIC_BUDGET: &str = "panic-budget";
    /// Budget higher than the actual count — the ratchet must be lowered.
    pub const PANIC_BUDGET_STALE: &str = "panic-budget-stale";
    /// Enum variant missing from a required dispatch/registry/test file.
    pub const ENUM_EXHAUSTIVE: &str = "enum-exhaustive";
    /// Required raw text missing from a file.
    pub const REQUIRED_TEXT: &str = "required-text";
    /// `audit:` comment that does not parse as a valid directive.
    pub const BAD_SUPPRESSION: &str = "bad-suppression";
    /// Well-formed suppression that silenced nothing.
    pub const STALE_SUPPRESSION: &str = "stale-suppression";
    /// Policy points at a file that does not exist or declares no such
    /// enum/function.
    pub const POLICY_TARGET: &str = "policy-target";
    /// Banned allocation pattern anywhere in the `hot_path` *closure* —
    /// the transitive version of `hot-path-alloc`.
    pub const CLOSURE_ALLOC: &str = "closure-alloc";
    /// Real-time clock or hash container in any closure member's body.
    pub const CLOSURE_DETERMINISM: &str = "closure-determinism";
    /// Panic sites over the `step_loop` closure exceed its budget.
    pub const CLOSURE_PANIC_BUDGET: &str = "closure-panic-budget";
    /// The `step_loop` closure budget is above the actual count.
    pub const CLOSURE_PANIC_BUDGET_STALE: &str = "closure-panic-budget-stale";
    /// The `strict_numerics` closure calls a numeric helper outside the
    /// approved list.
    pub const REASSOCIATION_BOUNDARY: &str = "reassociation-boundary";
    /// A function is reachable from both the `strict_numerics` and
    /// `fast_numerics` roots. The tiers must never share numeric code:
    /// a helper edited for the reassociated tier would silently move
    /// strict-tier bits. Deliberately not suppressible — disjointness is
    /// restored by duplicating the helper or pruning a false edge in the
    /// committed policy, never by an inline allow.
    pub const TIER_ISOLATION: &str = "tier-isolation";
}

/// One audit violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (see [`rules`]).
    pub rule: &'static str,
    /// Workspace-relative file, or `<policy>` for policy-level findings.
    pub file: String,
    /// 1-based line, or 0 when the finding is file- or crate-level.
    pub line: u32,
    /// Human explanation.
    pub message: String,
}

impl Violation {
    /// Location string: `file:line` or just `file` for line 0.
    pub fn locus(&self) -> String {
        if self.line == 0 {
            self.file.clone()
        } else {
            format!("{}:{}", self.file, self.line)
        }
    }
}

/// One crate's ratchet status in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetStatus {
    /// The crate directory the budget applies to.
    pub crate_dir: String,
    /// Counted panic sites.
    pub actual: PanicCounts,
    /// Committed budget.
    pub budget: PanicCounts,
}

/// The full audit outcome.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Suppressions that silenced at least one violation.
    pub suppressions_used: usize,
    /// Per-crate ratchet state (always reported, violations or not).
    pub budgets: Vec<BudgetStatus>,
    /// Unsuppressed violations, sorted by `(file, line, rule)`.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Whether the audit passed.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Normalizes paths and sorts violations into the deterministic
    /// report order — after this, the emitted report is byte-stable
    /// across platforms and filesystem iteration order: every path uses
    /// `/` separators and violations sort by `(file, line, rule)`.
    pub fn finish(&mut self) {
        for v in &mut self.violations {
            if v.file.contains('\\') {
                v.file = v.file.replace('\\', "/");
            }
        }
        for b in &mut self.budgets {
            if b.crate_dir.contains('\\') {
                b.crate_dir = b.crate_dir.replace('\\', "/");
            }
        }
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// The human-readable report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "netmax-audit: {} file(s) scanned, {} suppression(s) in use",
            self.files_scanned, self.suppressions_used
        );
        for b in &self.budgets {
            let _ = writeln!(
                out,
                "  ratchet {:<16} unwrap {}/{}  expect {}/{}  panic {}/{}  unreachable {}/{}  index {}/{}",
                b.crate_dir,
                b.actual.unwrap,
                b.budget.unwrap,
                b.actual.expect,
                b.budget.expect,
                b.actual.panic,
                b.budget.panic,
                b.actual.unreachable,
                b.budget.unreachable,
                b.actual.index,
                b.budget.index,
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "PASS: no violations");
        } else {
            let _ = writeln!(out, "FAIL: {} violation(s)", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  [{}] {}: {}", v.rule, v.locus(), v.message);
            }
        }
        out
    }
}

fn counts_json(c: &PanicCounts) -> Json {
    Json::obj([
        ("unwrap", c.unwrap.to_json()),
        ("expect", c.expect.to_json()),
        ("panic", c.panic.to_json()),
        ("unreachable", c.unreachable.to_json()),
        ("index", c.index.to_json()),
    ])
}

impl ToJson for AuditReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(REPORT_SCHEMA.into())),
            ("pass", self.clean().to_json()),
            ("files_scanned", self.files_scanned.to_json()),
            ("suppressions_used", self.suppressions_used.to_json()),
            (
                "budgets",
                Json::Arr(
                    self.budgets
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("crate", b.crate_dir.to_json()),
                                ("actual", counts_json(&b.actual)),
                                ("budget", counts_json(&b.budget)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::obj([
                                ("rule", v.rule.to_json()),
                                ("file", v.file.to_json()),
                                ("line", (v.line as usize).to_json()),
                                ("message", v.message.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Schema tag of the committed closure report (`audit.closure.json`).
pub const CLOSURE_SCHEMA: &str = "netmax-audit/closure/v1";

/// One computed closure in the report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClosureInfo {
    /// The root set's name.
    pub name: String,
    /// Display ids (`file#qual`) of the resolved roots, sorted.
    pub roots: Vec<String>,
    /// Display ids of every function in the closure, sorted.
    pub functions: Vec<String>,
    /// `caller -> callee` edges with both ends in the closure, sorted.
    pub edges: Vec<String>,
    /// Calls the analyzer could not resolve to a workspace function,
    /// deduplicated and sorted — published so reviewers see exactly
    /// what the closure proof does *not* cover.
    pub unresolved: Vec<String>,
}

/// The committed closure report: what each root set actually reaches.
/// CI diffs this against a fresh run, so closure growth is a reviewed
/// change to a committed file, never a silent analyzer decision.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClosureReport {
    /// One entry per policy root set, sorted by name.
    pub closures: Vec<ClosureInfo>,
}

impl ClosureReport {
    /// Normalizes into the committed byte-stable form: closures sorted
    /// by name, every list sorted, `/` path separators throughout.
    pub fn finish(&mut self) {
        for c in &mut self.closures {
            for list in [&mut c.roots, &mut c.functions, &mut c.edges, &mut c.unresolved] {
                for s in list.iter_mut() {
                    if s.contains('\\') {
                        *s = s.replace('\\', "/");
                    }
                }
                list.sort();
                list.dedup();
            }
        }
        self.closures.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// The exact text committed to `audit.closure.json` (trailing
    /// newline included).
    pub fn pretty_text(&self) -> String {
        let mut text = self.to_json().pretty();
        text.push('\n');
        text
    }
}

impl ToJson for ClosureReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(CLOSURE_SCHEMA.into())),
            (
                "closures",
                Json::Arr(
                    self.closures
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("name", c.name.to_json()),
                                ("roots", c.roots.to_json()),
                                ("functions", c.functions.to_json()),
                                ("edges", c.edges.to_json()),
                                ("unresolved", c.unresolved.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AuditReport {
        let mut r = AuditReport {
            files_scanned: 3,
            suppressions_used: 1,
            budgets: vec![BudgetStatus {
                crate_dir: "crates/json".into(),
                actual: PanicCounts { unwrap: 1, ..PanicCounts::default() },
                budget: PanicCounts { unwrap: 2, ..PanicCounts::default() },
            }],
            violations: vec![
                Violation {
                    rule: rules::DETERMINISM_TIME,
                    file: "b.rs".into(),
                    line: 9,
                    message: "Instant".into(),
                },
                Violation {
                    rule: rules::PANIC_BUDGET,
                    file: "a.rs".into(),
                    line: 0,
                    message: "over".into(),
                },
            ],
        };
        r.finish();
        r
    }

    #[test]
    fn violations_sort_deterministically() {
        let r = report();
        assert_eq!(r.violations[0].file, "a.rs");
        assert!(!r.clean());
    }

    #[test]
    fn json_report_has_schema_and_violations() {
        let doc = report().to_json();
        assert_eq!(doc.field("schema").unwrap().as_str().unwrap(), REPORT_SCHEMA);
        assert!(!doc.field("pass").unwrap().as_bool().unwrap());
        assert_eq!(doc.field("violations").unwrap().as_arr().unwrap().len(), 2);
        let text = doc.pretty();
        assert!(text.contains("determinism-time"));
    }

    #[test]
    fn human_report_mentions_every_violation() {
        let text = report().human();
        assert!(text.contains("FAIL: 2 violation(s)"));
        assert!(text.contains("b.rs:9"));
        assert!(text.contains("ratchet crates/json"));
    }

    #[test]
    fn finish_normalizes_backslash_paths() {
        let mut r = AuditReport {
            violations: vec![Violation {
                rule: rules::DETERMINISM_TIME,
                file: "crates\\core\\src\\lib.rs".into(),
                line: 3,
                message: "m".into(),
            }],
            ..AuditReport::default()
        };
        r.finish();
        assert_eq!(r.violations[0].file, "crates/core/src/lib.rs");
    }

    #[test]
    fn closure_report_is_sorted_and_stable() {
        let mut c = ClosureReport {
            closures: vec![
                ClosureInfo { name: "step_loop".into(), ..ClosureInfo::default() },
                ClosureInfo {
                    name: "hot_path".into(),
                    functions: vec!["b.rs#g".into(), "a\\x.rs#f".into(), "b.rs#g".into()],
                    ..ClosureInfo::default()
                },
            ],
        };
        c.finish();
        assert_eq!(c.closures[0].name, "hot_path");
        assert_eq!(c.closures[0].functions, ["a/x.rs#f", "b.rs#g"]);
        let doc = c.to_json();
        assert_eq!(doc.field("schema").unwrap().as_str().unwrap(), CLOSURE_SCHEMA);
        assert!(c.pretty_text().ends_with('\n'));
    }
}
