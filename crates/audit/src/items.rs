//! A lightweight item parser on top of the lexer: `fn` definitions with
//! their enclosing `impl`/`trait` context, plus the call expressions in
//! each body.
//!
//! This is deliberately *not* name resolution — there are no types, no
//! imports, no trait solving. Each function is identified by its file,
//! bare name, and (when inside an `impl`/`trait` block) a qualifier like
//! `EventQueue::pop`; each call site records only its syntactic shape
//! (`foo(…)`, `.foo(…)`, `A::foo(…)`). The graph layer then resolves
//! calls *conservatively*: a bare or method name links to every function
//! with that name in the workspace, and anything that matches no
//! workspace definition lands in an explicit `unresolved` bucket instead
//! of silently vanishing.

use crate::lexer::Tok;
use crate::scan::FileScan;

/// One `fn` item found in a file. Test-masked functions are skipped —
/// the closure rules protect shipped code only, like every other rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Workspace-relative file that defines it.
    pub file: String,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when there is one.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, `(open brace, close brace)` inclusive.
    /// `None` for bodyless trait methods.
    pub body: Option<(usize, usize)>,
    /// Every call expression in the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// The qualified display name: `Type::name` or the bare name.
    pub fn qual(&self) -> String {
        match &self.owner {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// The unique display id used in reports: `file#qual`.
    pub fn id(&self) -> String {
        format!("{}#{}", self.file, self.qual())
    }
}

/// The syntactic shape of one call expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Call {
    /// `name(…)` — a free call (or a call through a local binding).
    Free(String),
    /// `.name(…)` — a method call on some receiver.
    Method(String),
    /// `A::name(…)` — the last two path segments of a path call.
    /// `Self::name(…)` arrives with the enclosing type substituted.
    Path(String, String),
}

impl Call {
    /// The callee's bare name.
    pub fn name(&self) -> &str {
        match self {
            Call::Free(n) | Call::Method(n) => n,
            Call::Path(_, n) => n,
        }
    }

    /// The report spelling: `name`, `.name`, or `A::name`.
    pub fn display(&self) -> String {
        match self {
            Call::Free(n) => n.clone(),
            Call::Method(n) => format!(".{n}"),
            Call::Path(t, n) => format!("{t}::{n}"),
        }
    }
}

/// One call expression with the 1-based line it occurs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The call's syntactic shape.
    pub call: Call,
    /// 1-based source line of the callee name.
    pub line: u32,
}

/// Rust keywords that can be directly followed by `(` without being
/// calls (`match (a, b)`, `return (x)`, `if (…)`, tuple patterns, …).
const NON_CALL_KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
    "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Parses every non-test `fn` item in the file, with owner context and
/// call sites. Total: arbitrary token soup produces a (possibly empty)
/// item list, never a panic.
pub fn parse_items(scan: &FileScan) -> Vec<FnItem> {
    Parser { scan, ctx: Vec::new(), out: Vec::new() }.run()
}

struct Parser<'a> {
    scan: &'a FileScan,
    /// Enclosing `impl`/`trait` blocks: `(type name, end token index)`.
    ctx: Vec<(String, usize)>,
    out: Vec<FnItem>,
}

impl Parser<'_> {
    fn run(mut self) -> Vec<FnItem> {
        let n = self.scan.tokens.len();
        let mut i = 0usize;
        while i < n {
            while self.ctx.last().is_some_and(|(_, end)| *end <= i) {
                self.ctx.pop();
            }
            match self.ident(i) {
                Some("impl") | Some("trait") if !self.scan.is_test(i) => {
                    let is_impl = self.ident(i) == Some("impl");
                    if let Some((name, open)) = self.block_header(i + 1, is_impl) {
                        if let Some(end) = self.matching_brace(open) {
                            self.ctx.push((name, end));
                        }
                        i = open + 1;
                        continue;
                    }
                }
                Some("fn") if !self.scan.is_test(i) => {
                    // Require an identifier right after: `fn` in function
                    // pointer types (`fn(u32) -> u32`) has none.
                    if let Some(name) = self.ident(i + 1) {
                        let item = self.fn_item(i, name.to_string());
                        // Continue *inside* the body so nested fns and
                        // inner impl blocks are still discovered.
                        let next = match item.body {
                            Some((open, _)) => open + 1,
                            None => i + 2,
                        };
                        self.out.push(item);
                        i = next;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Bodies nest (closures, inner fns), so call extraction runs as a
        // second pass over each recorded body range.
        let items = std::mem::take(&mut self.out);
        items
            .into_iter()
            .map(|mut item| {
                if let Some((open, close)) = item.body {
                    item.calls = self.calls_in(open, close, item.owner.as_deref());
                }
                item
            })
            .collect()
    }

    fn ident(&self, idx: usize) -> Option<&str> {
        match self.scan.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    fn punct(&self, idx: usize) -> Option<char> {
        match self.scan.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    /// The index just past the `>` closing the `<` at `open`, arrow-aware
    /// (`->` inside `Fn() -> T` bounds does not close the list).
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.scan.tokens.len() {
            match self.punct(j) {
                Some('<') => depth += 1,
                Some('>') if self.punct(j.wrapping_sub(1)) == Some('-') => {}
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                // A stray `;` or `{` means the `<` was a comparison, not
                // a generic list — bail where we are.
                Some(';') | Some('{') => return j,
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Token index just past the `}` matching the `{` at `open`.
    fn matching_brace(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.scan.tokens.len() {
            match self.punct(j) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j + 1);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Parses an `impl`/`trait` header starting just past the keyword:
    /// returns the subject type name and the index of the opening `{`.
    /// For `impl Trait for Type` the subject is `Type`; the name is the
    /// last angle-depth-0 identifier of the (final) type expression, so
    /// `Box<dyn Model>` reads as `Box` and `a::b::Foo<T>` as `Foo`.
    fn block_header(&self, mut j: usize, is_impl: bool) -> Option<(String, usize)> {
        if self.punct(j) == Some('<') {
            j = self.skip_angles(j);
        }
        let mut name: Option<String> = None;
        let mut depth = 0i32;
        while j < self.scan.tokens.len() {
            match &self.scan.tokens[j].tok {
                Tok::Punct('{') if depth == 0 => {
                    return name.map(|n| (n, j));
                }
                Tok::Punct(';') => return None, // `impl Trait for T;` etc.
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') if self.punct(j.wrapping_sub(1)) == Some('-') => {}
                Tok::Punct('>') => depth -= 1,
                // `trait Name: Bound + Bound {` — the name is over at the
                // colon; supertrait bounds must not replace it.
                Tok::Punct(':') if depth == 0 && !is_impl => {
                    while j < self.scan.tokens.len() && self.punct(j) != Some('{') {
                        j += 1;
                    }
                    continue;
                }
                Tok::Ident(s) if depth == 0 => match s.as_str() {
                    // The subject of `impl Trait for Type` is `Type`.
                    "for" if is_impl => name = None,
                    // Bounds/clauses end the type expression.
                    "where" => {
                        // Skip to the `{` without collecting bound names.
                        while j < self.scan.tokens.len() && self.punct(j) != Some('{') {
                            j += 1;
                        }
                        continue;
                    }
                    "dyn" | "mut" => {}
                    _ => name = Some(s.clone()),
                },
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Builds the item for the `fn` keyword at `kw` (name already read).
    fn fn_item(&self, kw: usize, name: String) -> FnItem {
        let owner = self.ctx.last().map(|(t, _)| t.clone());
        let line = self.scan.tokens[kw].line;
        // The body is the first `{` after the signature; a `;` first is a
        // bodyless trait method. Braces cannot occur in the signature
        // itself (const generic defaults would, but the workspace has
        // none and the failure mode is a shorter body, not a panic).
        let mut j = kw + 2;
        let mut body = None;
        while j < self.scan.tokens.len() {
            match self.punct(j) {
                Some('{') => {
                    if let Some(end) = self.matching_brace(j) {
                        body = Some((j, end - 1));
                    }
                    break;
                }
                Some(';') => break,
                _ => j += 1,
            }
        }
        FnItem { file: self.scan.path.clone(), name, owner, line, body, calls: Vec::new() }
    }

    /// Extracts call expressions from the body token range. `owner`
    /// substitutes for `Self::` path calls.
    fn calls_in(&self, open: usize, close: usize, owner: Option<&str>) -> Vec<CallSite> {
        let mut calls = Vec::new();
        for i in open..=close.min(self.scan.tokens.len().saturating_sub(1)) {
            let Some(name) = self.ident(i) else { continue };
            // `fn name` is a definition; keywords aren't callees.
            if self.ident(i.wrapping_sub(1)) == Some("fn")
                || NON_CALL_KEYWORDS.contains(&name)
            {
                continue;
            }
            // The callee name must be followed by `(`, optionally with a
            // turbofish `::<…>` in between.
            let mut after = i + 1;
            if self.punct(after) == Some(':')
                && self.punct(after + 1) == Some(':')
                && self.punct(after + 2) == Some('<')
            {
                after = self.skip_angles(after + 2);
            }
            if self.punct(after) != Some('(') {
                continue;
            }
            // Uppercase-initial names are tuple-struct/variant
            // constructors (`Some(x)`, `StepEvent::Arrival(…)` in
            // patterns) — workspace functions are snake_case.
            if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                continue;
            }
            let call = if self.punct(i.wrapping_sub(1)) == Some('.') {
                Call::Method(name.to_string())
            } else if self.punct(i.wrapping_sub(1)) == Some(':')
                && self.punct(i.wrapping_sub(2)) == Some(':')
            {
                match self.ident(i.wrapping_sub(3)) {
                    Some("Self") => match owner {
                        Some(t) => Call::Path(t.to_string(), name.to_string()),
                        None => Call::Free(name.to_string()),
                    },
                    Some(ty) => Call::Path(ty.to_string(), name.to_string()),
                    // `<T as Trait>::name(…)` and similar: the segment
                    // before `::` is punctuation — treat as a free call
                    // so conservative by-name resolution still applies.
                    None => Call::Free(name.to_string()),
                }
            } else {
                Call::Free(name.to_string())
            };
            calls.push(CallSite { call, line: self.scan.tokens[i].line });
        }
        calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<FnItem> {
        parse_items(&FileScan::new("t.rs", src))
    }

    fn shapes(item: &FnItem) -> Vec<Call> {
        item.calls.iter().map(|c| c.call.clone()).collect()
    }

    #[test]
    fn free_and_impl_fns_get_owners() {
        let src = "
            fn free() {}
            impl Foo { fn method(&self) {} }
            trait Bar { fn required(&self); fn provided(&self) {} }
            impl Bar for Baz { fn required(&self) {} }
        ";
        let got: Vec<String> = items(src).iter().map(FnItem::qual).collect();
        assert_eq!(
            got,
            ["free", "Foo::method", "Bar::required", "Bar::provided", "Baz::required"]
        );
    }

    #[test]
    fn generic_impls_and_trait_objects_resolve_subject() {
        let src = "
            impl<E: Clone> EventQueue<E> { fn pop(&mut self) {} }
            impl Clone for Box<dyn Model> { fn clone(&self) -> Self { x() } }
            impl<F: Fn(u32) -> u32> Wrap<F> { fn call(&self) {} }
        ";
        let got: Vec<String> = items(src).iter().map(FnItem::qual).collect();
        assert_eq!(got, ["EventQueue::pop", "Box::clone", "Wrap::call"]);
    }

    #[test]
    fn trait_supertraits_do_not_rename_the_trait() {
        let its = items("trait Model: Send + Sync { fn loss(&self) {} }");
        assert_eq!(its[0].qual(), "Model::loss");
        let its = items("pub trait Driver<E>: Iterator<Item = E> { fn advance(&mut self) {} }");
        assert_eq!(its[0].qual(), "Driver::advance");
    }

    #[test]
    fn bodyless_trait_fn_has_no_body_or_calls() {
        let its = items("trait T { fn f(&self); }");
        assert_eq!(its.len(), 1);
        assert!(its[0].body.is_none());
        assert!(its[0].calls.is_empty());
    }

    #[test]
    fn call_shapes_are_classified() {
        let src = "
            fn f(&self) {
                helper();
                self.advance(3);
                SgdState::step(a, b);
                Self::inner();
                alloc::vec::from_elem(0, 1);
                parse::<u32>(s);
            }
        ";
        let src = format!("impl Driver {{ {src} }}");
        let its = items(&src);
        assert_eq!(its.len(), 1);
        assert_eq!(
            shapes(&its[0]),
            [
                Call::Free("helper".into()),
                Call::Method("advance".into()),
                Call::Path("SgdState".into(), "step".into()),
                Call::Path("Driver".into(), "inner".into()),
                Call::Path("vec".into(), "from_elem".into()),
                Call::Free("parse".into()),
            ]
        );
    }

    #[test]
    fn constructors_patterns_and_macros_are_not_calls() {
        let src = r#"
            fn f(e: StepEvent) {
                match e { StepEvent::Arrival(x) => use_it(x), _ => {} }
                let s = Some(3);
                let v = vec![1];
                let t = (a, b);
                if cond { work(); }
                println!("{}", 0);
            }
        "#;
        let calls = shapes(&items(src)[0]);
        assert_eq!(calls, [Call::Free("use_it".into()), Call::Free("work".into())]);
    }

    #[test]
    fn nested_fns_and_closures_are_attributed() {
        let src = "
            fn outer() {
                fn inner() { deep(); }
                let c = |x| lambda_call(x);
                c(1);
                top();
            }
        ";
        let its = items(src);
        let outer = its.iter().find(|i| i.name == "outer").unwrap();
        let inner = its.iter().find(|i| i.name == "inner").unwrap();
        // Outer's body *contains* inner's, so outer conservatively sees
        // deep() too — closure semantics want exactly that (outer can
        // reach everything its nested items call).
        let outer_calls = shapes(outer);
        assert!(outer_calls.contains(&Call::Free("deep".into())));
        assert!(outer_calls.contains(&Call::Free("lambda_call".into())));
        assert!(outer_calls.contains(&Call::Free("top".into())));
        assert_eq!(shapes(inner), [Call::Free("deep".into())]);
    }

    #[test]
    fn test_masked_fns_are_skipped() {
        let src = "
            fn real() {}
            #[cfg(test)]
            mod tests { fn helper() {} #[test] fn t() {} }
        ";
        let got: Vec<String> = items(src).iter().map(|i| i.name.clone()).collect();
        assert_eq!(got, ["real"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let its = items("fn takes(f: fn(u32) -> u32) -> u32 { f(3) }");
        assert_eq!(its.len(), 1);
        assert_eq!(its[0].name, "takes");
        assert_eq!(shapes(&its[0]), [Call::Free("f".into())]);
    }

    #[test]
    fn where_clauses_and_return_impls_do_not_confuse_bodies() {
        let src = "
            fn g<T>(x: T) -> impl Iterator<Item = T> where T: Clone { once(x) }
        ";
        let its = items(src);
        assert_eq!(shapes(&its[0]), [Call::Free("once".into())]);
    }

    #[test]
    fn garbage_tokens_never_panic() {
        for bad in ["fn", "impl", "impl {", "fn (", "trait X fn", "impl < { }", "fn f({"] {
            let _ = items(bad);
        }
    }
}
