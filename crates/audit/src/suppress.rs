//! The suppression-comment grammar: `// audit: allow(<rule>) -- <reason>`.
//!
//! A suppression silences matching violations **on its own line or the
//! line directly below it** (trailing-comment and line-above placement).
//! The reason is mandatory — a suppression without one is itself a
//! violation — and so is being *used*: a suppression that silences
//! nothing is reported as stale, so allow-comments can never outlive the
//! code they excuse.

use crate::lexer::LineComment;
use std::fmt;

/// The rules a suppression comment may name. The closure rules also
/// honor the matching per-file rule's suppression at the same line
/// (`determinism-time`/`-hash` covers `closure-determinism`,
/// `hot-path-alloc` covers `closure-alloc`) so one allow-comment keeps
/// silencing both layers; the closure *budget* rules are deliberately
/// not suppressible — the budget itself is the escape hatch.
pub const SUPPRESSIBLE_RULES: &[&str] = &[
    "determinism-time",
    "determinism-hash",
    "hot-path-alloc",
    "enum-exhaustive",
    "closure-alloc",
    "closure-determinism",
    "reassociation-boundary",
];

/// One parsed `audit: allow` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule being allowed (one of [`SUPPRESSIBLE_RULES`]).
    pub rule: String,
    /// The mandatory justification after `--`.
    pub reason: String,
}

impl Suppression {
    /// Whether this suppression covers a violation reported on
    /// `violation_line`.
    pub fn covers(&self, violation_line: u32) -> bool {
        violation_line == self.line || violation_line == self.line + 1
    }
}

impl fmt::Display for Suppression {
    /// The canonical comment form (without the leading `//`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, " audit: allow({}) -- {}", self.rule, self.reason)
    }
}

/// Why an `audit:`-prefixed comment failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuppressError {
    /// The text after `audit:` is not `allow(<rule>)`.
    BadSyntax,
    /// The named rule is not one the analyzer knows.
    UnknownRule(String),
    /// The ` -- <reason>` tail is missing or empty.
    MissingReason,
}

impl fmt::Display for SuppressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuppressError::BadSyntax => {
                write!(f, "expected `audit: allow(<rule>) -- <reason>`")
            }
            SuppressError::UnknownRule(r) => {
                write!(f, "unknown rule `{r}` (known: {})", SUPPRESSIBLE_RULES.join(", "))
            }
            SuppressError::MissingReason => {
                write!(f, "suppression needs a ` -- <reason>` justification")
            }
        }
    }
}

/// Parses one line comment's text (the part after `//`).
///
/// Returns `None` for ordinary comments, `Some(Ok)` for a well-formed
/// suppression, and `Some(Err)` for a comment that *claims* to be an
/// audit directive but is malformed — those are violations, never
/// silently ignored. Total: never panics on any input.
pub fn parse_comment(c: &LineComment) -> Option<Result<Suppression, SuppressError>> {
    let text = c.text.trim_start_matches(['/', '!']).trim();
    let rest = text.strip_prefix("audit:")?.trim_start();
    Some(parse_directive(rest).map(|(rule, reason)| Suppression {
        line: c.line,
        rule,
        reason,
    }))
}

fn parse_directive(rest: &str) -> Result<(String, String), SuppressError> {
    let rest = rest.strip_prefix("allow").ok_or(SuppressError::BadSyntax)?.trim_start();
    let rest = rest.strip_prefix('(').ok_or(SuppressError::BadSyntax)?;
    let close = rest.find(')').ok_or(SuppressError::BadSyntax)?;
    let rule = rest[..close].trim();
    if !SUPPRESSIBLE_RULES.contains(&rule) {
        return Err(SuppressError::UnknownRule(rule.to_string()));
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(SuppressError::MissingReason);
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// Extracts every suppression from a file's comments, splitting malformed
/// directives out as `(line, error)` pairs.
pub fn collect(
    comments: &[LineComment],
) -> (Vec<Suppression>, Vec<(u32, SuppressError)>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        match parse_comment(c) {
            Some(Ok(s)) => ok.push(s),
            Some(Err(e)) => bad.push((c.line, e)),
            None => {}
        }
    }
    (ok, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str) -> LineComment {
        LineComment { line: 7, text: text.to_string() }
    }

    #[test]
    fn well_formed_suppression_parses() {
        let s = parse_comment(&comment(" audit: allow(determinism-time) -- deadline escape hatch"))
            .unwrap()
            .unwrap();
        assert_eq!(s.rule, "determinism-time");
        assert_eq!(s.reason, "deadline escape hatch");
        assert!(s.covers(7) && s.covers(8) && !s.covers(9) && !s.covers(6));
    }

    #[test]
    fn canonical_form_round_trips() {
        let s = Suppression {
            line: 7,
            rule: "hot-path-alloc".into(),
            reason: "pool refill, amortized".into(),
        };
        let back = parse_comment(&comment(&s.to_string())).unwrap().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn ordinary_comments_are_not_directives() {
        for text in [" normal comment", "/ doc comment", "! inner doc", " auditing notes: x"] {
            assert_eq!(parse_comment(&comment(text)), None, "{text:?}");
        }
    }

    #[test]
    fn malformed_directives_are_errors_not_ignored() {
        use SuppressError::*;
        let cases = [
            (" audit: allow(determinism-time)", MissingReason),
            (" audit: allow(determinism-time) --   ", MissingReason),
            (" audit: allow(no-such-rule) -- x", UnknownRule("no-such-rule".into())),
            (" audit: allow determinism-time -- x", BadSyntax),
            (" audit: deny(determinism-time) -- x", BadSyntax),
            (" audit: allow(determinism-time -- x", BadSyntax),
        ];
        for (text, want) in cases {
            assert_eq!(parse_comment(&comment(text)), Some(Err(want)), "{text:?}");
        }
    }

    #[test]
    fn collect_splits_good_from_bad() {
        let comments = vec![
            comment(" audit: allow(determinism-hash) -- emission is sorted downstream"),
            comment(" plain"),
            comment(" audit: allow(bogus) -- why"),
        ];
        let (ok, bad) = collect(&comments);
        assert_eq!(ok.len(), 1);
        assert_eq!(bad.len(), 1);
    }
}
