//! The machine-readable rule policy (`audit.policy.json` at the
//! workspace root, schema `netmax-audit/policy/v1`).
//!
//! The policy is data, not code, so a reviewer can see every allowlist
//! entry, hot-path registration, and panic budget in one committed JSON
//! document — and so the ratchet (budgets that may only decrease) is a
//! one-line diff when a panic site is removed.

use netmax_json::{FromJson, Json, JsonError, ToJson};

/// Schema tag of the policy document.
pub const POLICY_SCHEMA: &str = "netmax-audit/policy/v1";

/// The determinism rule's configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterminismPolicy {
    /// Identifiers banned as real-time clocks (`Instant`, `SystemTime`).
    pub time_banned: Vec<String>,
    /// Files (exact path) or directories (trailing `/`) where real-time
    /// clocks are legitimate: bench timing, CLI deadlines.
    pub time_allowlist: Vec<String>,
    /// Identifiers banned as iteration-order-nondeterministic containers.
    pub hash_banned: Vec<String>,
    /// Allowlist for the container ban, same matching rules.
    pub hash_allowlist: Vec<String>,
}

/// One hot-path manifest entry: functions in one file whose bodies must
/// stay free of the banned allocation patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotPathEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// Function names registered as hot (every same-named `fn` in the
    /// file is scanned — trait defaults and impls alike).
    pub functions: Vec<String>,
}

/// One crate's committed panic budget — the ratchet state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicBudget {
    /// The crate's source directory, e.g. `crates/core`.
    pub crate_dir: String,
    /// Allowed `.unwrap()` count.
    pub unwrap: usize,
    /// Allowed `.expect(…)` count.
    pub expect: usize,
    /// Allowed `panic!`/`todo!`/`unimplemented!` count.
    pub panic: usize,
    /// Allowed `unreachable!` count.
    pub unreachable: usize,
    /// Allowed direct-index-expression count.
    pub index: usize,
}

/// One enum exhaustiveness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumCheck {
    /// The enum's name.
    pub name: String,
    /// The file declaring it.
    pub decl: String,
    /// Files in which **every** variant must appear qualified
    /// (`Enum::Variant`; `Self::Variant` also counts in the decl file).
    pub each: Vec<String>,
    /// Files whose **union** must cover every variant (test coverage may
    /// be spread across suites).
    pub union: Vec<String>,
}

/// A raw-text requirement: `needle` must appear somewhere in `file`
/// (string literals included — this is how schema-tag coverage is
/// pinned, e.g. the v1 checkpoint compat test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequiredText {
    /// Workspace-relative file path.
    pub file: String,
    /// Substring that must occur in the file's raw text.
    pub needle: String,
}

/// The complete audit policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// Directory prefixes excluded from every scan (fixture trees).
    pub exclude: Vec<String>,
    /// Determinism rule configuration.
    pub determinism: DeterminismPolicy,
    /// The hot-path manifest.
    pub hot_paths: Vec<HotPathEntry>,
    /// Banned patterns in hot-path bodies (`.collect`, `vec!`,
    /// `Vec::new` spellings).
    pub hot_path_banned: Vec<String>,
    /// Per-crate panic budgets.
    pub panic_budgets: Vec<PanicBudget>,
    /// Enum exhaustiveness checks.
    pub enums: Vec<EnumCheck>,
    /// Raw-text requirements.
    pub required_text: Vec<RequiredText>,
}

impl Policy {
    /// Whether `path` matches an allowlist: exact entries match the whole
    /// path, entries with a trailing `/` match as directory prefixes.
    pub fn allowlisted(list: &[String], path: &str) -> bool {
        list.iter().any(|entry| {
            if let Some(dir) = entry.strip_suffix('/') {
                path.strip_prefix(dir).is_some_and(|rest| rest.starts_with('/'))
            } else {
                entry == path
            }
        })
    }
}

fn string_vec(v: &Json, key: &str) -> Result<Vec<String>, JsonError> {
    Vec::<String>::from_json(v.field(key)?)
}

impl FromJson for Policy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let schema = v.field("schema")?.as_str()?;
        if schema != POLICY_SCHEMA {
            return Err(JsonError::schema(format!(
                "unsupported policy schema `{schema}` (expected `{POLICY_SCHEMA}`)"
            )));
        }
        let det = v.field("determinism")?;
        Ok(Policy {
            exclude: string_vec(v, "exclude")?,
            determinism: DeterminismPolicy {
                time_banned: string_vec(det, "time_banned")?,
                time_allowlist: string_vec(det, "time_allowlist")?,
                hash_banned: string_vec(det, "hash_banned")?,
                hash_allowlist: string_vec(det, "hash_allowlist")?,
            },
            hot_paths: v
                .field("hot_paths")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Ok(HotPathEntry {
                        file: String::from_json(e.field("file")?)?,
                        functions: string_vec(e, "functions")?,
                    })
                })
                .collect::<Result<_, JsonError>>()?,
            hot_path_banned: string_vec(v, "hot_path_banned")?,
            panic_budgets: v
                .field("panic_budgets")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Ok(PanicBudget {
                        crate_dir: String::from_json(e.field("crate")?)?,
                        unwrap: e.field("unwrap")?.as_usize()?,
                        expect: e.field("expect")?.as_usize()?,
                        panic: e.field("panic")?.as_usize()?,
                        unreachable: e.field("unreachable")?.as_usize()?,
                        index: e.field("index")?.as_usize()?,
                    })
                })
                .collect::<Result<_, JsonError>>()?,
            enums: v
                .field("enums")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Ok(EnumCheck {
                        name: String::from_json(e.field("enum")?)?,
                        decl: String::from_json(e.field("decl")?)?,
                        each: string_vec(e, "each")?,
                        union: string_vec(e, "union")?,
                    })
                })
                .collect::<Result<_, JsonError>>()?,
            required_text: v
                .field("required_text")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Ok(RequiredText {
                        file: String::from_json(e.field("file")?)?,
                        needle: String::from_json(e.field("needle")?)?,
                    })
                })
                .collect::<Result<_, JsonError>>()?,
        })
    }
}

impl ToJson for Policy {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(POLICY_SCHEMA.into())),
            ("exclude", self.exclude.to_json()),
            (
                "determinism",
                Json::obj([
                    ("time_banned", self.determinism.time_banned.to_json()),
                    ("time_allowlist", self.determinism.time_allowlist.to_json()),
                    ("hash_banned", self.determinism.hash_banned.to_json()),
                    ("hash_allowlist", self.determinism.hash_allowlist.to_json()),
                ]),
            ),
            (
                "hot_paths",
                Json::Arr(
                    self.hot_paths
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("file", e.file.to_json()),
                                ("functions", e.functions.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("hot_path_banned", self.hot_path_banned.to_json()),
            (
                "panic_budgets",
                Json::Arr(
                    self.panic_budgets
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("crate", b.crate_dir.to_json()),
                                ("unwrap", b.unwrap.to_json()),
                                ("expect", b.expect.to_json()),
                                ("panic", b.panic.to_json()),
                                ("unreachable", b.unreachable.to_json()),
                                ("index", b.index.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "enums",
                Json::Arr(
                    self.enums
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("enum", e.name.to_json()),
                                ("decl", e.decl.to_json()),
                                ("each", e.each.to_json()),
                                ("union", e.union.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "required_text",
                Json::Arr(
                    self.required_text
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("file", r.file.to_json()),
                                ("needle", r.needle.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_round_trips_through_json() {
        let p = Policy {
            exclude: vec!["crates/audit/tests/fixtures/".into()],
            determinism: DeterminismPolicy {
                time_banned: vec!["Instant".into(), "SystemTime".into()],
                time_allowlist: vec!["crates/bench/src/bin/".into(), "x/y.rs".into()],
                hash_banned: vec!["HashMap".into(), "HashSet".into()],
                hash_allowlist: vec![],
            },
            hot_paths: vec![HotPathEntry {
                file: "crates/ml/src/model.rs".into(),
                functions: vec!["loss_scratch".into()],
            }],
            hot_path_banned: vec![".collect".into(), "vec!".into(), "Vec::new".into()],
            panic_budgets: vec![PanicBudget {
                crate_dir: "crates/json".into(),
                unwrap: 0,
                expect: 1,
                panic: 2,
                unreachable: 3,
                index: 44,
            }],
            enums: vec![EnumCheck {
                name: "StepEvent".into(),
                decl: "a.rs".into(),
                each: vec!["a.rs".into()],
                union: vec!["b.rs".into(), "c.rs".into()],
            }],
            required_text: vec![RequiredText { file: "d.rs".into(), needle: "v1".into() }],
        };
        let text = p.to_json().pretty();
        let back = Policy::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn schema_tag_is_enforced() {
        let doc = Json::parse(r#"{"schema":"netmax-audit/policy/v0"}"#).unwrap();
        assert!(Policy::from_json(&doc).is_err());
    }

    #[test]
    fn allowlist_matches_exact_and_prefix() {
        let list = vec!["crates/bench/src/bin/".to_string(), "src/lib.rs".to_string()];
        assert!(Policy::allowlisted(&list, "crates/bench/src/bin/sanity.rs"));
        assert!(Policy::allowlisted(&list, "src/lib.rs"));
        assert!(!Policy::allowlisted(&list, "crates/bench/src/binary.rs"));
        assert!(!Policy::allowlisted(&list, "src/lib.rs.bak"));
    }
}
