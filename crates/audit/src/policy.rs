//! The machine-readable rule policy (`audit.policy.json` at the
//! workspace root, schema `netmax-audit/policy/v2`).
//!
//! The policy is data, not code, so a reviewer can see every allowlist
//! entry, closure root set, and panic budget in one committed JSON
//! document — and so the ratchet (budgets that may only decrease) is a
//! one-line diff when a panic site is removed.
//!
//! v2 adds the call-graph layer: named **root sets** from which the
//! analyzer computes reachability closures, an optional panic budget
//! over the `step_loop` closure, and the `reassociation` boundary
//! configuration for the `strict_numerics` closure. v1 documents still
//! parse — the new fields default to empty, and the legacy `hot_paths`
//! manifest is honored as extra `hot_path` roots either way.

use crate::scan::PanicCounts;
use netmax_json::{FromJson, Json, JsonError, ToJson};

/// Schema tag of the current policy document.
pub const POLICY_SCHEMA: &str = "netmax-audit/policy/v2";

/// The previous schema tag, still accepted on input.
pub const POLICY_SCHEMA_V1: &str = "netmax-audit/policy/v1";

/// The determinism rule's configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterminismPolicy {
    /// Identifiers banned as real-time clocks (`Instant`, `SystemTime`).
    pub time_banned: Vec<String>,
    /// Files (exact path) or directories (trailing `/`) where real-time
    /// clocks are legitimate: bench timing, CLI deadlines.
    pub time_allowlist: Vec<String>,
    /// Identifiers banned as iteration-order-nondeterministic containers.
    pub hash_banned: Vec<String>,
    /// Allowlist for the container ban, same matching rules.
    pub hash_allowlist: Vec<String>,
}

/// One hot-path manifest entry: functions in one file whose bodies must
/// stay free of the banned allocation patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotPathEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// Function names registered as hot (every same-named `fn` in the
    /// file is scanned — trait defaults and impls alike).
    pub functions: Vec<String>,
}

/// One crate's committed panic budget — the ratchet state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicBudget {
    /// The crate's source directory, e.g. `crates/core`.
    pub crate_dir: String,
    /// Allowed `.unwrap()` count.
    pub unwrap: usize,
    /// Allowed `.expect(…)` count.
    pub expect: usize,
    /// Allowed `panic!`/`todo!`/`unimplemented!` count.
    pub panic: usize,
    /// Allowed `unreachable!` count.
    pub unreachable: usize,
    /// Allowed direct-index-expression count.
    pub index: usize,
}

/// One enum exhaustiveness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumCheck {
    /// The enum's name.
    pub name: String,
    /// The file declaring it.
    pub decl: String,
    /// Files in which **every** variant must appear qualified
    /// (`Enum::Variant`; `Self::Variant` also counts in the decl file).
    pub each: Vec<String>,
    /// Files whose **union** must cover every variant (test coverage may
    /// be spread across suites).
    pub union: Vec<String>,
}

/// One root-set (or prune-set) entry: functions named by file, with the
/// same matching rules as the legacy hot-path manifest — every `fn` in
/// the file with that bare name, trait defaults and impls alike.
pub type RootEntry = HotPathEntry;

/// One named closure root set. The closure is everything reachable from
/// `roots` through the call graph, never entering `prune` — prunes are
/// the policy-visible escape hatch for conservative false edges (a cold
/// function that merely shares a method name with a hot one), reviewed
/// in the committed policy instead of hidden in analyzer code.
///
/// Set names carry the rule semantics: `hot_path` gets the allocation
/// ban, `step_loop` gets the closure panic ratchet, `strict_numerics`
/// gets the reassociation boundary; every set gets the determinism ban.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootSet {
    /// The set's name (`hot_path`, `step_loop`, `strict_numerics`, …).
    pub name: String,
    /// Functions the closure starts from.
    pub roots: Vec<RootEntry>,
    /// Functions the traversal must never enter.
    pub prune: Vec<RootEntry>,
    /// Panic budget ratcheted over this set's closure. Any set may carry
    /// one; for `step_loop` the legacy top-level `step_loop_budget` is
    /// the fallback when this is absent.
    pub budget: Option<PanicCounts>,
}

/// The reassociation-boundary configuration: the `strict_numerics`
/// closure may only call numeric helpers from the approved list — the
/// seam a future reassociated fast-math tier plugs into without any
/// bitwise-pinned kernel noticing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reassociation {
    /// Files whose functions count as numeric helpers: any call from
    /// the closure into these modules must be approved.
    pub modules: Vec<String>,
    /// Float-intrinsic method names (`exp`, `mul_add`, …): unresolved
    /// calls with these names must be approved too.
    pub intrinsics: Vec<String>,
    /// The approved callee names.
    pub approved: Vec<String>,
}

/// A raw-text requirement: `needle` must appear somewhere in `file`
/// (string literals included — this is how schema-tag coverage is
/// pinned, e.g. the v1 checkpoint compat test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequiredText {
    /// Workspace-relative file path.
    pub file: String,
    /// Substring that must occur in the file's raw text.
    pub needle: String,
}

/// The complete audit policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// Directory prefixes excluded from every scan (fixture trees).
    pub exclude: Vec<String>,
    /// Determinism rule configuration.
    pub determinism: DeterminismPolicy,
    /// The legacy hot-path manifest (v1) — still honored as extra
    /// `hot_path` roots in v2 documents.
    pub hot_paths: Vec<HotPathEntry>,
    /// Banned patterns in hot-path bodies (`.collect`, `vec!`,
    /// `Vec::new` spellings). Also enforced over the whole `hot_path`
    /// closure.
    pub hot_path_banned: Vec<String>,
    /// Per-crate panic budgets.
    pub panic_budgets: Vec<PanicBudget>,
    /// Named closure root sets (v2; empty for v1 documents).
    pub root_sets: Vec<RootSet>,
    /// Panic budget over the `step_loop` closure — the ratchet on
    /// everything `Session::step` can reach, finer than the per-crate
    /// budgets because cold code does not dilute it.
    pub step_loop_budget: Option<PanicCounts>,
    /// Reassociation-boundary configuration for `strict_numerics`.
    pub reassociation: Option<Reassociation>,
    /// Enum exhaustiveness checks.
    pub enums: Vec<EnumCheck>,
    /// Raw-text requirements.
    pub required_text: Vec<RequiredText>,
}

impl Policy {
    /// Whether `path` matches an allowlist: exact entries match the whole
    /// path, entries with a trailing `/` match as directory prefixes.
    pub fn allowlisted(list: &[String], path: &str) -> bool {
        list.iter().any(|entry| {
            if let Some(dir) = entry.strip_suffix('/') {
                path.strip_prefix(dir).is_some_and(|rest| rest.starts_with('/'))
            } else {
                entry == path
            }
        })
    }
}

fn string_vec(v: &Json, key: &str) -> Result<Vec<String>, JsonError> {
    Vec::<String>::from_json(v.field(key)?)
}

fn entry_vec(v: &Json, key: &str) -> Result<Vec<RootEntry>, JsonError> {
    // `prune` may be omitted from a root set entirely.
    let Some(arr) = v.get(key) else { return Ok(Vec::new()) };
    arr.as_arr()?
        .iter()
        .map(|e| {
            Ok(RootEntry {
                file: String::from_json(e.field("file")?)?,
                functions: string_vec(e, "functions")?,
            })
        })
        .collect()
}

fn counts_from(v: &Json) -> Result<PanicCounts, JsonError> {
    Ok(PanicCounts {
        unwrap: v.field("unwrap")?.as_usize()?,
        expect: v.field("expect")?.as_usize()?,
        panic: v.field("panic")?.as_usize()?,
        unreachable: v.field("unreachable")?.as_usize()?,
        index: v.field("index")?.as_usize()?,
    })
}

impl FromJson for Policy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let schema = v.field("schema")?.as_str()?;
        if schema != POLICY_SCHEMA && schema != POLICY_SCHEMA_V1 {
            return Err(JsonError::schema(format!(
                "unsupported policy schema `{schema}` (expected `{POLICY_SCHEMA}`)"
            )));
        }
        let det = v.field("determinism")?;
        Ok(Policy {
            exclude: string_vec(v, "exclude")?,
            determinism: DeterminismPolicy {
                time_banned: string_vec(det, "time_banned")?,
                time_allowlist: string_vec(det, "time_allowlist")?,
                hash_banned: string_vec(det, "hash_banned")?,
                hash_allowlist: string_vec(det, "hash_allowlist")?,
            },
            hot_paths: v
                .field("hot_paths")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Ok(HotPathEntry {
                        file: String::from_json(e.field("file")?)?,
                        functions: string_vec(e, "functions")?,
                    })
                })
                .collect::<Result<_, JsonError>>()?,
            hot_path_banned: string_vec(v, "hot_path_banned")?,
            panic_budgets: v
                .field("panic_budgets")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Ok(PanicBudget {
                        crate_dir: String::from_json(e.field("crate")?)?,
                        unwrap: e.field("unwrap")?.as_usize()?,
                        expect: e.field("expect")?.as_usize()?,
                        panic: e.field("panic")?.as_usize()?,
                        unreachable: e.field("unreachable")?.as_usize()?,
                        index: e.field("index")?.as_usize()?,
                    })
                })
                .collect::<Result<_, JsonError>>()?,
            // v2 extensions — all optional so v1 documents keep parsing.
            root_sets: match v.get("root_sets") {
                None => Vec::new(),
                Some(arr) => arr
                    .as_arr()?
                    .iter()
                    .map(|e| {
                        Ok(RootSet {
                            name: String::from_json(e.field("name")?)?,
                            roots: entry_vec(e, "roots")?,
                            prune: entry_vec(e, "prune")?,
                            budget: match e.get("budget") {
                                None => None,
                                Some(b) => Some(counts_from(b)?),
                            },
                        })
                    })
                    .collect::<Result<_, JsonError>>()?,
            },
            step_loop_budget: match v.get("step_loop_budget") {
                None => None,
                Some(b) => Some(counts_from(b)?),
            },
            reassociation: match v.get("reassociation") {
                None => None,
                Some(r) => Some(Reassociation {
                    modules: string_vec(r, "modules")?,
                    intrinsics: string_vec(r, "intrinsics")?,
                    approved: string_vec(r, "approved")?,
                }),
            },
            enums: v
                .field("enums")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Ok(EnumCheck {
                        name: String::from_json(e.field("enum")?)?,
                        decl: String::from_json(e.field("decl")?)?,
                        each: string_vec(e, "each")?,
                        union: string_vec(e, "union")?,
                    })
                })
                .collect::<Result<_, JsonError>>()?,
            required_text: v
                .field("required_text")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Ok(RequiredText {
                        file: String::from_json(e.field("file")?)?,
                        needle: String::from_json(e.field("needle")?)?,
                    })
                })
                .collect::<Result<_, JsonError>>()?,
        })
    }
}

fn entries_json(entries: &[RootEntry]) -> Json {
    Json::Arr(
        entries
            .iter()
            .map(|e| {
                Json::obj([("file", e.file.to_json()), ("functions", e.functions.to_json())])
            })
            .collect(),
    )
}

fn counts_to(c: &PanicCounts) -> Json {
    Json::obj([
        ("unwrap", c.unwrap.to_json()),
        ("expect", c.expect.to_json()),
        ("panic", c.panic.to_json()),
        ("unreachable", c.unreachable.to_json()),
        ("index", c.index.to_json()),
    ])
}

impl ToJson for Policy {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::Str(POLICY_SCHEMA.into())),
            ("exclude", self.exclude.to_json()),
            (
                "determinism",
                Json::obj([
                    ("time_banned", self.determinism.time_banned.to_json()),
                    ("time_allowlist", self.determinism.time_allowlist.to_json()),
                    ("hash_banned", self.determinism.hash_banned.to_json()),
                    ("hash_allowlist", self.determinism.hash_allowlist.to_json()),
                ]),
            ),
            (
                "hot_paths",
                Json::Arr(
                    self.hot_paths
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("file", e.file.to_json()),
                                ("functions", e.functions.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("hot_path_banned", self.hot_path_banned.to_json()),
            (
                "panic_budgets",
                Json::Arr(
                    self.panic_budgets
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("crate", b.crate_dir.to_json()),
                                ("unwrap", b.unwrap.to_json()),
                                ("expect", b.expect.to_json()),
                                ("panic", b.panic.to_json()),
                                ("unreachable", b.unreachable.to_json()),
                                ("index", b.index.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "enums",
                Json::Arr(
                    self.enums
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("enum", e.name.to_json()),
                                ("decl", e.decl.to_json()),
                                ("each", e.each.to_json()),
                                ("union", e.union.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "required_text",
                Json::Arr(
                    self.required_text
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("file", r.file.to_json()),
                                ("needle", r.needle.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "root_sets",
                Json::Arr(
                    self.root_sets
                        .iter()
                        .map(|s| {
                            let mut set_fields = vec![
                                ("name", s.name.to_json()),
                                ("roots", entries_json(&s.roots)),
                                ("prune", entries_json(&s.prune)),
                            ];
                            if let Some(b) = &s.budget {
                                set_fields.push(("budget", counts_to(b)));
                            }
                            Json::obj(set_fields)
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(b) = &self.step_loop_budget {
            fields.push(("step_loop_budget", counts_to(b)));
        }
        if let Some(r) = &self.reassociation {
            fields.push((
                "reassociation",
                Json::obj([
                    ("modules", r.modules.to_json()),
                    ("intrinsics", r.intrinsics.to_json()),
                    ("approved", r.approved.to_json()),
                ]),
            ));
        }
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_round_trips_through_json() {
        let p = Policy {
            exclude: vec!["crates/audit/tests/fixtures/".into()],
            determinism: DeterminismPolicy {
                time_banned: vec!["Instant".into(), "SystemTime".into()],
                time_allowlist: vec!["crates/bench/src/bin/".into(), "x/y.rs".into()],
                hash_banned: vec!["HashMap".into(), "HashSet".into()],
                hash_allowlist: vec![],
            },
            hot_paths: vec![HotPathEntry {
                file: "crates/ml/src/model.rs".into(),
                functions: vec!["loss_scratch".into()],
            }],
            hot_path_banned: vec![".collect".into(), "vec!".into(), "Vec::new".into()],
            panic_budgets: vec![PanicBudget {
                crate_dir: "crates/json".into(),
                unwrap: 0,
                expect: 1,
                panic: 2,
                unreachable: 3,
                index: 44,
            }],
            enums: vec![EnumCheck {
                name: "StepEvent".into(),
                decl: "a.rs".into(),
                each: vec!["a.rs".into()],
                union: vec!["b.rs".into(), "c.rs".into()],
            }],
            required_text: vec![RequiredText { file: "d.rs".into(), needle: "v1".into() }],
            root_sets: vec![RootSet {
                name: "hot_path".into(),
                roots: vec![RootEntry {
                    file: "crates/ml/src/model.rs".into(),
                    functions: vec!["loss_scratch".into()],
                }],
                prune: vec![RootEntry {
                    file: "crates/core/src/engine/gossip.rs".into(),
                    functions: vec!["start".into()],
                }],
                budget: Some(PanicCounts { unwrap: 1, ..PanicCounts::default() }),
            }],
            step_loop_budget: Some(PanicCounts { expect: 1, index: 4, ..PanicCounts::default() }),
            reassociation: Some(Reassociation {
                modules: vec!["crates/ml/src/params.rs".into()],
                intrinsics: vec!["exp".into(), "mul_add".into()],
                approved: vec!["axpy".into(), "exp".into(), "mul_add".into()],
            }),
        };
        let text = p.to_json().pretty();
        let back = Policy::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn schema_tag_is_enforced() {
        let doc = Json::parse(r#"{"schema":"netmax-audit/policy/v0"}"#).unwrap();
        assert!(Policy::from_json(&doc).is_err());
    }

    #[test]
    fn v1_documents_still_parse_with_defaults() {
        let doc = Json::parse(
            r#"{
                "schema": "netmax-audit/policy/v1",
                "exclude": [],
                "determinism": {
                    "time_banned": ["Instant"], "time_allowlist": [],
                    "hash_banned": ["HashMap"], "hash_allowlist": []
                },
                "hot_paths": [{"file": "src/a.rs", "functions": ["hot"]}],
                "hot_path_banned": ["vec!"],
                "panic_budgets": [],
                "enums": [],
                "required_text": []
            }"#,
        )
        .unwrap();
        let p = Policy::from_json(&doc).unwrap();
        assert!(p.root_sets.is_empty());
        assert!(p.step_loop_budget.is_none());
        assert!(p.reassociation.is_none());
        assert_eq!(p.hot_paths.len(), 1, "the v1 manifest still loads (as extra roots)");
    }

    #[test]
    fn prune_may_be_omitted_from_a_root_set() {
        let doc = Json::parse(
            r#"{
                "schema": "netmax-audit/policy/v2",
                "exclude": [],
                "determinism": {
                    "time_banned": [], "time_allowlist": [],
                    "hash_banned": [], "hash_allowlist": []
                },
                "hot_paths": [],
                "hot_path_banned": [],
                "panic_budgets": [],
                "enums": [],
                "required_text": [],
                "root_sets": [{"name": "hot_path",
                               "roots": [{"file": "src/a.rs", "functions": ["hot"]}]}]
            }"#,
        )
        .unwrap();
        let p = Policy::from_json(&doc).unwrap();
        assert_eq!(p.root_sets.len(), 1);
        assert!(p.root_sets[0].prune.is_empty());
    }

    #[test]
    fn allowlist_matches_exact_and_prefix() {
        let list = vec!["crates/bench/src/bin/".to_string(), "src/lib.rs".to_string()];
        assert!(Policy::allowlisted(&list, "crates/bench/src/bin/sanity.rs"));
        assert!(Policy::allowlisted(&list, "src/lib.rs"));
        assert!(!Policy::allowlisted(&list, "crates/bench/src/binary.rs"));
        assert!(!Policy::allowlisted(&list, "src/lib.rs.bak"));
    }
}
