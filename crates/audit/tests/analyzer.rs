//! End-to-end analyzer tests over the fixture trees in
//! `tests/fixtures/`: each rule must fire on the violating fixture, stay
//! quiet on the clean one, be silenced by reasoned suppressions, and
//! reject defective directives.

use netmax_audit::policy::{DeterminismPolicy, EnumCheck, HotPathEntry, PanicBudget, Policy, RequiredText};
use netmax_audit::{run_audit, AuditReport};
use netmax_json::ToJson;
use std::path::PathBuf;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// The shared fixture policy: both fixtures declare `Mode` and a `hot`
/// function; budgets are zero so any panic site trips the ratchet.
fn fixture_policy() -> Policy {
    Policy {
        exclude: vec![],
        determinism: DeterminismPolicy {
            time_banned: vec!["Instant".into(), "SystemTime".into()],
            time_allowlist: vec![],
            hash_banned: vec!["HashMap".into(), "HashSet".into()],
            hash_allowlist: vec![],
        },
        hot_paths: vec![HotPathEntry {
            file: "src/lib.rs".into(),
            functions: vec!["hot".into()],
        }],
        hot_path_banned: vec![
            "Vec::new".into(),
            "vec!".into(),
            "format!".into(),
            ".collect".into(),
            ".to_vec".into(),
            ".clone".into(),
        ],
        panic_budgets: vec![PanicBudget {
            crate_dir: "src".into(),
            unwrap: 0,
            expect: 0,
            panic: 0,
            unreachable: 0,
            index: 0,
        }],
        enums: vec![EnumCheck {
            name: "Mode".into(),
            decl: "src/lib.rs".into(),
            each: vec!["src/lib.rs".into()],
            union: vec![],
        }],
        required_text: vec![],
        root_sets: vec![],
        step_loop_budget: None,
        reassociation: None,
    }
}

fn audit(fixture: &str, policy: &Policy) -> AuditReport {
    run_audit(&fixture_root(fixture), policy).expect("fixture audit runs")
}

fn rules_fired(report: &AuditReport) -> Vec<&'static str> {
    report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn clean_fixture_passes_every_rule() {
    let report = audit("clean", &fixture_policy());
    assert!(report.clean(), "clean fixture must pass:\n{}", report.human());
    assert_eq!(report.files_scanned, 1);
    assert_eq!(report.suppressions_used, 0);
}

#[test]
fn violating_fixture_trips_every_rule() {
    let report = audit("violating", &fixture_policy());
    let fired = rules_fired(&report);
    for rule in ["determinism-time", "determinism-hash", "hot-path-alloc", "enum-exhaustive", "panic-budget"] {
        assert!(fired.contains(&rule), "expected {rule} to fire, got {fired:?}");
    }
    // `Mode::Off` is the variant the wildcard arm swallowed.
    let enum_miss = report
        .violations
        .iter()
        .find(|v| v.rule == "enum-exhaustive")
        .expect("enum violation present");
    assert!(enum_miss.message.contains("Mode::Off"), "{}", enum_miss.message);
    // Violations carry real line numbers for line-level rules.
    assert!(report
        .violations
        .iter()
        .filter(|v| v.rule == "determinism-time" || v.rule == "hot-path-alloc")
        .all(|v| v.line > 0));
}

#[test]
fn suppressed_fixture_is_clean_and_every_directive_is_used() {
    // The suppressed fixture declares `hot` but no `Mode` enum.
    let mut policy = fixture_policy();
    policy.enums.clear();
    let report = audit("suppressed", &policy);
    assert!(report.clean(), "all violations are excused:\n{}", report.human());
    // Two time placements (use item + body), one same-line hash, one hot-path.
    assert_eq!(report.suppressions_used, 4, "{}", report.human());
}

#[test]
fn stale_and_malformed_directives_are_violations() {
    // The stale fixture declares neither `hot` nor `Mode`; only the
    // directives themselves are under test.
    let mut policy = fixture_policy();
    policy.enums.clear();
    policy.hot_paths.clear();
    let report = audit("stale", &policy);
    let fired = rules_fired(&report);
    assert_eq!(
        fired.iter().filter(|r| **r == "bad-suppression").count(),
        2,
        "unknown rule + missing reason: {:?}",
        report.violations
    );
    assert_eq!(fired.iter().filter(|r| **r == "stale-suppression").count(), 1);
    // Nothing else fires: the code itself is clean.
    assert_eq!(report.violations.len(), 3, "{:?}", report.violations);
}

#[test]
fn stale_hot_path_manifest_entry_is_a_violation() {
    let mut policy = fixture_policy();
    policy.hot_paths[0].functions.push("gone".into());
    let report = audit("clean", &policy);
    let fired = rules_fired(&report);
    assert!(fired.contains(&"hot-path-manifest"), "{fired:?}");
}

#[test]
fn budget_above_actual_is_a_stale_ratchet_violation() {
    let mut policy = fixture_policy();
    policy.panic_budgets[0].unwrap = 3;
    let report = audit("clean", &policy);
    assert!(rules_fired(&report).contains(&"panic-budget-stale"), "{}", report.human());
}

#[test]
fn missing_required_text_and_policy_targets_are_violations() {
    let mut policy = fixture_policy();
    policy.required_text = vec![
        RequiredText { file: "src/lib.rs".into(), needle: "Clean fixture".into() },
        RequiredText { file: "src/lib.rs".into(), needle: "no such needle".into() },
        RequiredText { file: "src/nope.rs".into(), needle: "x".into() },
    ];
    policy.enums.push(EnumCheck {
        name: "Ghost".into(),
        decl: "src/lib.rs".into(),
        each: vec![],
        union: vec![],
    });
    let report = audit("clean", &policy);
    let fired = rules_fired(&report);
    assert_eq!(fired.iter().filter(|r| **r == "required-text").count(), 1, "{fired:?}");
    assert_eq!(fired.iter().filter(|r| **r == "policy-target").count(), 2, "{fired:?}");
}

#[test]
fn json_report_round_trips_violations() {
    let report = audit("violating", &fixture_policy());
    let doc = report.to_json();
    assert_eq!(doc.field("schema").unwrap().as_str().unwrap(), "netmax-audit/report/v1");
    assert!(!doc.field("pass").unwrap().as_bool().unwrap());
    let listed = doc.field("violations").unwrap().as_arr().unwrap().len();
    assert_eq!(listed, report.violations.len());
    // The pretty form parses back — the CI artifact is real JSON.
    let parsed = netmax_json::Json::parse(&doc.pretty()).expect("report parses");
    assert_eq!(parsed.field("files_scanned").unwrap().as_usize().unwrap(), 1);
}
