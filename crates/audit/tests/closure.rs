//! Closure-rule integration tests over the `closure_*` fixture trees:
//! each rule must fire on the violating tree (where every violation
//! lives in a *transitive* callee, never a root), stay quiet on the
//! clean tree, honor prunes, honor suppressions written against either
//! the closure rule or the per-site rule it shadows, and stay entirely
//! off for v1 policies with no root sets.

use netmax_audit::policy::{
    DeterminismPolicy, PanicBudget, Policy, Reassociation, RootEntry, RootSet,
};
use netmax_audit::scan::PanicCounts;
use netmax_audit::{run_audit_full, AuditOutcome};
use std::path::PathBuf;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn root_set(name: &str, functions: &[&str], prune: &[&str]) -> RootSet {
    let entry = |functions: &[&str]| RootEntry {
        file: "src/lib.rs".into(),
        functions: functions.iter().map(|s| s.to_string()).collect(),
    };
    RootSet {
        name: name.into(),
        roots: vec![entry(functions)],
        prune: if prune.is_empty() { vec![] } else { vec![entry(prune)] },
        budget: None,
    }
}

/// The shared closure-fixture policy: three root sets anchored at
/// `hot_root`/`step_root`/`kernel`, a zero step-loop budget, and a
/// reassociation boundary at `src/math.rs` approving only `axpy`.
fn closure_policy() -> Policy {
    Policy {
        exclude: vec![],
        determinism: DeterminismPolicy {
            time_banned: vec!["Instant".into(), "SystemTime".into()],
            time_allowlist: vec![],
            hash_banned: vec!["HashMap".into(), "HashSet".into()],
            hash_allowlist: vec![],
        },
        hot_paths: vec![],
        hot_path_banned: vec!["vec!".into(), "format!".into(), ".clone".into()],
        panic_budgets: vec![],
        enums: vec![],
        required_text: vec![],
        root_sets: vec![
            root_set("hot_path", &["hot_root"], &[]),
            root_set("step_loop", &["step_root"], &[]),
            root_set("strict_numerics", &["kernel"], &[]),
        ],
        step_loop_budget: Some(PanicCounts::default()),
        reassociation: Some(Reassociation {
            modules: vec!["src/math.rs".into()],
            intrinsics: vec!["exp".into(), "mul_add".into()],
            approved: vec!["axpy".into()],
        }),
    }
}

fn audit(fixture: &str, policy: &Policy) -> AuditOutcome {
    run_audit_full(&fixture_root(fixture), policy).expect("fixture audit runs")
}

fn rules_fired(outcome: &AuditOutcome) -> Vec<&'static str> {
    outcome.report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn clean_tree_passes_every_closure_rule() {
    let outcome = audit("closure_clean", &closure_policy());
    assert!(outcome.report.clean(), "\n{}", outcome.report.human());
    assert_eq!(outcome.closures.closures.len(), 3);
}

#[test]
fn violating_tree_trips_every_closure_rule() {
    let outcome = audit("closure_violating", &closure_policy());
    let fired = rules_fired(&outcome);
    for rule in [
        "closure-alloc",
        "closure-determinism",
        "closure-panic-budget",
        "reassociation-boundary",
    ] {
        assert!(fired.contains(&rule), "expected {rule} to fire, got {fired:?}");
    }
    // The reassociation boundary catches both shapes: the unapproved
    // boundary-module helper and the unapproved float intrinsic.
    let boundary: Vec<&str> = outcome
        .report
        .violations
        .iter()
        .filter(|v| v.rule == "reassociation-boundary")
        .map(|v| v.message.as_str())
        .collect();
    assert!(boundary.iter().any(|m| m.contains("shuffle")), "{boundary:?}");
    assert!(boundary.iter().any(|m| m.contains("exp")), "{boundary:?}");
}

#[test]
fn violations_live_in_transitive_callees_not_roots() {
    let outcome = audit("closure_violating", &closure_policy());
    let hot = outcome
        .closures
        .closures
        .iter()
        .find(|c| c.name == "hot_path")
        .expect("hot_path closure reported");
    assert!(hot.roots.contains(&"src/lib.rs#hot_root".to_string()), "{:?}", hot.roots);
    assert!(
        hot.functions.contains(&"src/lib.rs#spill".to_string()),
        "transitive callee missing from closure: {:?}",
        hot.functions
    );
    // Every closure-alloc finding is in the helper, not the root.
    for v in outcome.report.violations.iter().filter(|v| v.rule == "closure-alloc") {
        assert!(v.message.contains("spill"), "{}", v.message);
    }
}

#[test]
fn prunes_cut_the_traversal_at_the_named_functions() {
    let mut policy = closure_policy();
    policy.root_sets[0] = root_set("hot_path", &["hot_root"], &["spill"]);
    policy.root_sets[1] = root_set("step_loop", &["step_root"], &["risky"]);
    let outcome = audit("closure_violating", &closure_policy());
    let pruned = audit("closure_violating", &policy);
    let fired = rules_fired(&pruned);
    assert!(!fired.contains(&"closure-alloc"), "prune must cut the alloc site: {fired:?}");
    assert!(!fired.contains(&"closure-panic-budget"), "prune must cut the panic sites: {fired:?}");
    // The unpruned run still fires both, so the prune is what changed.
    let unpruned = rules_fired(&outcome);
    assert!(unpruned.contains(&"closure-alloc") && unpruned.contains(&"closure-panic-budget"));
}

#[test]
fn stale_closure_budget_is_flagged() {
    let mut policy = closure_policy();
    // Budget far above the fixture's actual two sites — the two-way
    // ratchet must demand it be lowered.
    policy.step_loop_budget = Some(PanicCounts {
        unwrap: 5,
        expect: 0,
        panic: 0,
        unreachable: 0,
        index: 5,
    });
    let outcome = audit("closure_violating", &policy);
    let fired = rules_fired(&outcome);
    assert!(fired.contains(&"closure-panic-budget-stale"), "{fired:?}");
}

#[test]
fn per_set_budget_overrides_the_legacy_step_loop_budget() {
    let mut policy = closure_policy();
    // The set-level budget (far above actual) must win over the zero
    // top-level budget: the stale arm fires, not the over-budget arm.
    policy.root_sets[1].budget =
        Some(PanicCounts { unwrap: 9, expect: 9, panic: 9, unreachable: 9, index: 9 });
    let outcome = audit("closure_violating", &policy);
    let fired = rules_fired(&outcome);
    assert!(!fired.contains(&"closure-panic-budget"), "{fired:?}");
    assert!(fired.contains(&"closure-panic-budget-stale"), "{fired:?}");
}

#[test]
fn any_root_set_may_carry_a_panic_budget() {
    let mut policy = closure_policy();
    // A zero budget on the strict_numerics set: the ratchet now reports
    // a `closure:strict_numerics` status row alongside step_loop's.
    policy.root_sets[2].budget = Some(PanicCounts::default());
    let outcome = audit("closure_clean", &policy);
    assert!(outcome.report.clean(), "\n{}", outcome.report.human());
    let rows: Vec<&str> =
        outcome.report.budgets.iter().map(|b| b.crate_dir.as_str()).collect();
    assert!(rows.contains(&"closure:strict_numerics"), "{rows:?}");
    assert!(rows.contains(&"closure:step_loop"), "{rows:?}");
}

#[test]
fn suppressions_cover_closure_rules_and_their_per_site_shadows() {
    let mut policy = closure_policy();
    // The suppressed tree only has the hot-path shape.
    policy.root_sets = vec![root_set("hot_path", &["hot_root"], &[])];
    let outcome = audit("closure_suppressed", &policy);
    assert!(outcome.report.clean(), "\n{}", outcome.report.human());
    // Two directives, both in use: one names the closure rule
    // (closure-alloc), one names the per-site rule the closure rule
    // shadows (determinism-time covering closure-determinism).
    assert_eq!(outcome.report.suppressions_used, 2, "\n{}", outcome.report.human());
}

#[test]
fn v1_policies_compute_no_closures_and_fire_no_closure_rules() {
    let mut policy = closure_policy();
    policy.root_sets = vec![];
    // A v1-era crate budget keeps the per-crate ratchet exercised while
    // the closure machinery stays off.
    policy.panic_budgets = vec![PanicBudget {
        crate_dir: "src".into(),
        unwrap: 1,
        expect: 0,
        panic: 0,
        unreachable: 0,
        index: 1,
    }];
    let outcome = audit("closure_violating", &policy);
    assert!(outcome.closures.closures.is_empty());
    for v in &outcome.report.violations {
        assert!(!v.rule.starts_with("closure-"), "unexpected {} violation", v.rule);
        assert_ne!(v.rule, "reassociation-boundary");
    }
}

/// Minimal two-set policy over the `closure_tiers` fixture: one strict
/// root, one fast root, both reaching `shared_accum`.
fn tiers_policy() -> Policy {
    Policy {
        exclude: vec![],
        determinism: DeterminismPolicy {
            time_banned: vec!["Instant".into()],
            time_allowlist: vec![],
            hash_banned: vec!["HashMap".into()],
            hash_allowlist: vec![],
        },
        hot_paths: vec![],
        hot_path_banned: vec![],
        panic_budgets: vec![],
        enums: vec![],
        required_text: vec![],
        root_sets: vec![
            root_set("strict_numerics", &["strict_root"], &[]),
            root_set("fast_numerics", &["fast_root"], &[]),
        ],
        step_loop_budget: None,
        reassociation: None,
    }
}

#[test]
fn tier_isolation_fires_on_a_shared_helper_and_resists_suppression() {
    let outcome = audit("closure_tiers", &tiers_policy());
    let fired = rules_fired(&outcome);
    assert!(fired.contains(&"tier-isolation"), "{fired:?}");
    let shared: Vec<&str> = outcome
        .report
        .violations
        .iter()
        .filter(|v| v.rule == "tier-isolation")
        .map(|v| v.message.as_str())
        .collect();
    assert!(shared.iter().all(|m| m.contains("shared_accum")), "{shared:?}");
    // The fixture's inline `allow(tier-isolation)` directive must not
    // silence anything: the rule is not suppressible, so the directive
    // itself is rejected as naming an unknown rule.
    assert!(fired.contains(&"bad-suppression"), "{fired:?}");
    assert_eq!(outcome.report.suppressions_used, 0);
}

#[test]
fn tier_isolation_is_silenced_by_a_reviewed_prune_only() {
    let mut policy = tiers_policy();
    policy.root_sets[1] = root_set("fast_numerics", &["fast_root"], &["shared_accum"]);
    let outcome = audit("closure_tiers", &policy);
    let fired = rules_fired(&outcome);
    assert!(!fired.contains(&"tier-isolation"), "prune must cut the shared helper: {fired:?}");
}

#[test]
fn tier_isolation_stays_off_without_a_fast_numerics_set() {
    let mut policy = tiers_policy();
    policy.root_sets.pop();
    let outcome = audit("closure_tiers", &policy);
    let fired = rules_fired(&outcome);
    assert!(!fired.contains(&"tier-isolation"), "{fired:?}");
}

#[test]
fn missing_roots_and_prunes_are_policy_target_violations() {
    let mut policy = closure_policy();
    policy.root_sets.push(root_set("hot_path", &["no_such_fn"], &["also_missing"]));
    let outcome = audit("closure_violating", &policy);
    let targets: Vec<&str> = outcome
        .report
        .violations
        .iter()
        .filter(|v| v.rule == "policy-target")
        .map(|v| v.message.as_str())
        .collect();
    assert!(targets.iter().any(|m| m.contains("no_such_fn")), "{targets:?}");
    assert!(targets.iter().any(|m| m.contains("also_missing")), "{targets:?}");
}
