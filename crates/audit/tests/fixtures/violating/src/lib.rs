//! Violating fixture: every rule fires at least once on this file.

use std::collections::HashMap;
use std::time::Instant;

pub enum Mode {
    Fast,
    Slow,
    Off,
}

pub fn clock() -> f64 {
    Instant::now().elapsed().as_secs_f64()
}

pub fn count(m: &HashMap<u32, u32>) -> usize {
    m.len()
}

pub fn dispatch(m: Mode) -> u32 {
    // `Mode::Off` is swallowed by the wildcard arm — exactly the
    // omission the enum-exhaustive rule exists to catch.
    match m {
        Mode::Fast => 1,
        Mode::Slow => 2,
        _ => 0,
    }
}

pub fn hot(xs: &[u32]) -> u32 {
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
    doubled.iter().sum()
}

pub fn risky(o: Option<u32>, xs: &[u32]) -> u32 {
    o.unwrap() + o.expect("present") + xs[0]
}
