//! Closure-rule violating fixture: every closure rule must fire here,
//! and every violation sits in a *transitive* callee — never in a root —
//! so a pass proves the rules walk the call graph instead of rescanning
//! the root bodies.

pub mod math;

/// The `hot_path` root: clean itself, but calls an allocating helper.
pub fn hot_root(xs: &mut [f64]) {
    spill(xs);
}

/// Transitive hot-path member: allocates and reads the wall clock.
fn spill(xs: &mut [f64]) {
    let extra = vec![1.0; 4];
    let t = std::time::Instant::now();
    for (dst, src) in xs.iter_mut().zip(&extra) {
        *dst += *src + t.elapsed().as_secs_f64() * 0.0;
    }
}

/// The `step_loop` root: clean itself, but calls a panicking helper.
pub fn step_root(xs: &mut [f64]) {
    risky(xs);
}

/// Transitive step-loop member: one `.unwrap()` and one index site.
fn risky(xs: &mut [f64]) {
    let first: Option<f64> = xs.first().copied();
    xs[0] = first.unwrap() + 1.0;
}

/// The `strict_numerics` root: calls an unapproved boundary helper and
/// an unapproved float intrinsic.
pub fn kernel(xs: &mut [f64]) {
    math::shuffle(xs);
    for x in xs.iter_mut() {
        *x = x.exp();
    }
}
