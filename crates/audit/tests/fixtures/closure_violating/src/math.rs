//! The numeric-helper boundary module of the violating fixture:
//! `axpy` is on the approved list, `shuffle` is not.

/// Approved helper — calling this from the strict closure is fine.
pub fn axpy(a: f64, xs: &[f64], ys: &mut [f64]) {
    for (y, x) in ys.iter_mut().zip(xs) {
        *y += a * *x;
    }
}

/// Unapproved helper — calling this from the strict closure must trip
/// the reassociation boundary.
pub fn shuffle(xs: &mut [f64]) {
    if xs.len() >= 2 {
        xs.swap(0, 1);
    }
}
