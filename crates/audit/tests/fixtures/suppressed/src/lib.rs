//! Suppressed fixture: the same violations as the violating fixture, each
//! excused with a reasoned `audit: allow` directive.

// audit: allow(determinism-time) -- fixture: exercises line-above placement on a use item
use std::time::Instant;

pub fn clock() -> f64 {
    // audit: allow(determinism-time) -- fixture: exercises line-above placement in a body
    Instant::now().elapsed().as_secs_f64()
}

pub fn tally(seen: &mut std::collections::HashSet<u32>, v: u32) -> bool { // audit: allow(determinism-hash) -- fixture: exercises same-line placement
    seen.insert(v)
}

pub fn hot(xs: &[u32]) -> u32 {
    // audit: allow(hot-path-alloc) -- fixture: the collect below is the point
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
    doubled.iter().sum()
}
