//! Stale fixture: directives that are themselves defective — an unused
//! suppression, an unknown rule, and a missing reason.

// audit: allow(determinism-time) -- nothing on this or the next line reads a clock
pub fn quiet() -> u32 {
    7
}

// audit: allow(bogus-rule) -- no such rule exists
pub fn also_quiet() -> u32 {
    9
}

// audit: allow(determinism-hash)
pub fn still_quiet() -> u32 {
    11
}
