//! Tier-isolation fixture: a strict root and a fast root that both reach
//! one shared numeric helper. The `tier-isolation` rule must flag the
//! helper, a policy `prune` must silence it, and an inline allow-comment
//! must not (the rule is deliberately not suppressible — the directive
//! below is itself rejected as naming an unknown rule).

/// The `strict_numerics` root.
pub fn strict_root(xs: &mut [f64]) {
    shared_accum(xs);
}

/// The `fast_numerics` root.
pub fn fast_root(xs: &mut [f64]) {
    shared_accum(xs);
}

/// The helper both tiers reach — the isolation violation.
// audit: allow(tier-isolation) -- must not parse: the rule is not suppressible
fn shared_accum(xs: &mut [f64]) {
    for x in xs.iter_mut() {
        *x *= 2.0;
    }
}
