//! Closure-rule suppressed fixture: the same violations as the violating
//! tree, silenced by reasoned suppressions — one written against the
//! closure rule itself, one against the per-site rule it shadows, so the
//! alt-rule matching is exercised in both directions.

/// The `hot_path` root.
pub fn hot_root(xs: &mut [f64]) {
    spill(xs);
}

/// Transitive hot-path member with both violations suppressed.
fn spill(xs: &mut [f64]) {
    // audit: allow(closure-alloc) -- one-time scratch warm-up, measured cold
    let extra = vec![1.0; 4];
    // audit: allow(determinism-time) -- wall clock feeds a deadline, not the math
    let t = std::time::Instant::now();
    for (dst, src) in xs.iter_mut().zip(&extra) {
        *dst += *src + t.elapsed().as_secs_f64() * 0.0;
    }
}
