//! Clean fixture: no audit rule fires on this file.

use std::collections::BTreeMap;

pub enum Mode {
    Fast,
    Slow,
    Off,
}

pub fn label(m: &Mode) -> &'static str {
    match m {
        Mode::Fast => "fast",
        Mode::Slow => "slow",
        Mode::Off => "off",
    }
}

pub fn count(m: &BTreeMap<u32, u32>) -> usize {
    m.len()
}

pub fn hot(xs: &[u32], out: &mut [u32]) {
    for (dst, src) in out.iter_mut().zip(xs) {
        *dst = src.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_is_exempt_from_every_rule() {
        let t = Instant::now();
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        assert!(t.elapsed().as_secs_f64() >= 0.0);
    }
}
