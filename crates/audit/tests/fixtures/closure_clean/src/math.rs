//! The numeric-helper boundary module of the clean fixture: only the
//! approved `axpy` exists.

/// Approved helper.
pub fn axpy(a: f64, xs: &[f64], ys: &mut [f64]) {
    for (y, x) in ys.iter_mut().zip(xs) {
        *y += a * *x;
    }
}
