//! Closure-rule clean fixture: same root shapes as the violating tree —
//! roots calling transitive helpers — but every helper is allocation-free,
//! clock-free, panic-free, and numerically approved.

pub mod math;

/// The `hot_path` root.
pub fn hot_root(xs: &mut [f64]) {
    spill(xs);
}

/// Transitive hot-path member: pure slice arithmetic.
fn spill(xs: &mut [f64]) {
    for x in xs.iter_mut() {
        *x += 1.0;
    }
}

/// The `step_loop` root.
pub fn step_root(xs: &mut [f64]) {
    risky(xs);
}

/// Transitive step-loop member: no panic sites, no index expressions.
fn risky(xs: &mut [f64]) {
    if let Some(first) = xs.first_mut() {
        *first += 1.0;
    }
}

/// The `strict_numerics` root: only approved numeric helpers.
pub fn kernel(xs: &mut [f64]) {
    let mut acc = [0.0; 1];
    math::axpy(2.0, &acc, xs);
    if let Some(a) = acc.first_mut() {
        *a += 1.0;
    }
}
