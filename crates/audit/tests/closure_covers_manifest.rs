//! Differential guarantee for the v1 → v2 migration: the `hot_path`
//! closure computed from the committed v2 root sets must cover every
//! function the retired hand-listed `hot_paths` manifest named. The v2
//! analyzer may widen coverage (that is the point of the closure), but
//! it must never silently narrow it.

use netmax_audit::{load_policy, run_audit_full};
use std::path::PathBuf;

/// The hand-listed manifest exactly as the last v1 policy committed it,
/// frozen here so a future edit to the live policy cannot rewrite the
/// baseline this test compares against.
const V1_MANIFEST: &[(&str, &[&str])] = &[
    (
        "crates/ml/src/model.rs",
        &["loss_scratch", "loss_grad_scratch", "count_correct_scratch"],
    ),
    (
        "crates/core/src/engine/environment.rs",
        &[
            "compute_gradient",
            "gradient_step",
            "apply_gradient",
            "pull_params_into",
            "sample_active_neighbor",
            "sample_active_from",
            "book_iteration",
        ],
    ),
    ("crates/core/src/engine/gossip.rs", &["advance", "schedule_next"]),
    ("crates/net/src/event.rs", &["push", "pop", "insert", "link"]),
];

#[test]
fn hot_path_closure_covers_every_v1_manifest_function() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let policy = load_policy(&root.join("audit.policy.json")).expect("committed policy loads");
    let outcome = run_audit_full(&root, &policy).expect("workspace audit runs");
    let hot = outcome
        .closures
        .closures
        .iter()
        .find(|c| c.name == "hot_path")
        .expect("committed policy declares a hot_path root set");
    // A closure member id is `file#Owner::name` (or `file#name` for free
    // fns); a manifest entry is covered when some member in the same
    // file carries the bare name.
    let covered = |file: &str, func: &str| {
        hot.functions.iter().chain(&hot.roots).any(|id| {
            let Some((f, qual)) = id.split_once('#') else { return false };
            f == file && qual.rsplit("::").next() == Some(func)
        })
    };
    for (file, funcs) in V1_MANIFEST {
        for func in *funcs {
            assert!(
                covered(file, func),
                "v1 manifest entry {file}#{func} is not in the v2 hot_path closure"
            );
        }
    }
}
