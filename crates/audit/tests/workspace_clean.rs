//! The tier-1 gate: the committed `audit.policy.json` must hold over the
//! entire workspace, so `cargo test` fails the moment a banned pattern,
//! budget overrun, or stale suppression lands — no separate CI step
//! needed to notice locally.

use netmax_audit::{load_policy, run_audit_full};
use std::path::PathBuf;

#[test]
fn workspace_is_audit_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let policy = load_policy(&root.join("audit.policy.json")).expect("committed policy loads");
    let report = run_audit_full(&root, &policy).expect("workspace audit runs").report;
    assert!(report.clean(), "\n{}", report.human());
    // The engine's sanctioned real-clock escape hatches stay suppressed,
    // not silently dropped: the session deadline sites are three reasoned
    // allows, and losing them (or adding unreviewed ones) shows up here.
    assert_eq!(report.suppressions_used, 3, "\n{}", report.human());
}

#[test]
fn committed_closure_report_is_current_and_deterministic() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let policy = load_policy(&root.join("audit.policy.json")).expect("committed policy loads");
    let first = run_audit_full(&root, &policy).expect("workspace audit runs");
    let second = run_audit_full(&root, &policy).expect("workspace audit runs twice");
    // Two independent runs render byte-identically — the closure report
    // is a pure function of the tree and the policy.
    assert_eq!(first.closures.pretty_text(), second.closures.pretty_text());
    // And the committed `audit.closure.json` matches, so closure growth
    // is always a reviewed diff, never a silent drift.
    let committed = std::fs::read_to_string(root.join("audit.closure.json"))
        .expect("committed closure report exists (run `netmax-audit --closure`)");
    assert_eq!(
        first.closures.pretty_text(),
        committed,
        "audit.closure.json is stale — regenerate with `netmax-audit --closure`"
    );
}
