//! The tier-1 gate: the committed `audit.policy.json` must hold over the
//! entire workspace, so `cargo test` fails the moment a banned pattern,
//! budget overrun, or stale suppression lands — no separate CI step
//! needed to notice locally.

use netmax_audit::{load_policy, run_audit};
use std::path::PathBuf;

#[test]
fn workspace_is_audit_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let policy = load_policy(&root.join("audit.policy.json")).expect("committed policy loads");
    let report = run_audit(&root, &policy).expect("workspace audit runs");
    assert!(report.clean(), "\n{}", report.human());
    // The engine's sanctioned real-clock escape hatches stay suppressed,
    // not silently dropped: the session deadline sites are three reasoned
    // allows, and losing them (or adding unreviewed ones) shows up here.
    assert_eq!(report.suppressions_used, 3, "\n{}", report.human());
}
