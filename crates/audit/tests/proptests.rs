//! Property tests for the analyzer front end: the suppression grammar
//! round-trips through its canonical rendering, and the lexer and scanner
//! are total — arbitrary byte soup never panics them.

use netmax_audit::enums::enum_variants;
use netmax_audit::graph::CallGraph;
use netmax_audit::items::parse_items;
use netmax_audit::lexer::{lex, LineComment};
use netmax_audit::scan::{count_panic_sites, FileScan};
use netmax_audit::suppress::{parse_comment, Suppression, SUPPRESSIBLE_RULES};
use proptest::collection::vec;
use proptest::prelude::*;

/// Printable, non-space ASCII — reasons built from this survive the
/// parser's whitespace trimming unchanged.
fn reason_char() -> impl Strategy<Value = char> {
    (33u8..127).prop_map(|b| b as char)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Rendering a suppression through `Display` and re-parsing the
    /// comment yields the identical suppression, for every rule and any
    /// printable reason.
    #[test]
    fn suppression_round_trips_through_canonical_form(
        rule_idx in 0usize..SUPPRESSIBLE_RULES.len(),
        reason_chars in vec(reason_char(), 1..40),
        line in 1u32..100_000,
    ) {
        let reason: String = reason_chars.into_iter().collect();
        let s = Suppression {
            line,
            rule: SUPPRESSIBLE_RULES[rule_idx].to_string(),
            reason: reason.clone(),
        };
        let comment = LineComment { line, text: s.to_string() };
        let back = parse_comment(&comment);
        prop_assert_eq!(back, Some(Ok(s)));
    }

    /// The whole front end is total: lexing, test-mask construction,
    /// panic counting, enum extraction, and suppression parsing accept
    /// arbitrary (lossily-decoded) byte strings without panicking.
    #[test]
    fn analyzer_never_panics_on_arbitrary_input(raw in vec(0u16..256, 0..400)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&text);
        prop_assert!(lexed.tokens.len() <= text.len() + 1);
        let scan = FileScan::new("fuzz.rs", &text);
        let counts = count_panic_sites(&scan);
        prop_assert!(counts.total() <= scan.tokens.len());
        let _ = enum_variants(&scan, "E");
        for c in &lexed.comments {
            let _ = parse_comment(c);
        }
    }

    /// Suppression parsing is total on arbitrary comment text too — every
    /// input is either not-a-directive, a parse, or a typed error.
    #[test]
    fn comment_parsing_never_panics(raw in vec(0u16..256, 0..120)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_comment(&LineComment { line: 1, text });
    }

    /// The item parser is total on arbitrary byte soup, and every item it
    /// extracts is internally consistent: a body span inside the token
    /// stream, and call sites on real lines.
    #[test]
    fn item_parser_never_panics_and_is_consistent(raw in vec(0u16..256, 0..400)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let scan = FileScan::new("fuzz.rs", &text);
        let items = parse_items(&scan);
        for f in &items {
            prop_assert!(!f.name.is_empty());
            if let Some((open, close)) = f.body {
                prop_assert!(open <= close);
                prop_assert!(close < scan.tokens.len());
            }
            for site in &f.calls {
                prop_assert!(site.line >= 1);
                prop_assert!(!site.call.name().is_empty());
            }
        }
        // Graph construction and closure are total over whatever the
        // parser produced, and a closure from all roots stays inside
        // the function set.
        let graph = CallGraph::build(items);
        let roots = (0..graph.fns.len()).collect();
        let closure = graph.closure(&roots, &Default::default());
        prop_assert!(closure.len() <= graph.fns.len());
        let _ = graph.dump();
    }

    /// Closures are monotone: adding a root never shrinks the closure,
    /// and pruning a function never grows it.
    #[test]
    fn closures_are_monotone_in_roots_and_antitone_in_prunes(
        raw in vec(0u16..256, 0..300),
        pick in 0usize..8,
    ) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let graph = CallGraph::build(parse_items(&FileScan::new("fuzz.rs", &text)));
        if graph.fns.is_empty() {
            return Ok(());
        }
        let chosen = pick % graph.fns.len();
        let small: std::collections::BTreeSet<usize> = [chosen].into();
        let all: std::collections::BTreeSet<usize> = (0..graph.fns.len()).collect();
        let none = Default::default();
        let c_small = graph.closure(&small, &none);
        let c_all = graph.closure(&all, &none);
        prop_assert!(c_small.is_subset(&c_all));
        let c_pruned = graph.closure(&all, &small);
        prop_assert!(c_pruned.is_subset(&c_all));
    }
}
