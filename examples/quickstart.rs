//! Quickstart: train a model with NetMax over a simulated heterogeneous
//! cluster and print the run summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use netmax::prelude::*;

fn main() {
    // A CIFAR10-class workload with the ResNet18 communication profile:
    // 11.7M parameters on the wire per pull, paper hyper-parameters
    // (batch 128, momentum 0.9, weight decay 1e-4, lr 0.1).
    let spec = WorkloadSpec::cifar10_like();
    // Instantiate the datasets once; the environment below shares them.
    let workload = spec.instantiate();
    let alpha = workload.optim.lr;

    // Eight workers spread over three servers; intra-machine links are
    // fast, inter-machine links are 1 GbE, and one random link is slowed
    // 2–100× with the slow link re-drawn periodically — the paper's
    // multi-tenant cluster (§V-A).
    let scenario = ScenarioBuilder::new()
        .workers(8)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(spec)
        .max_epochs(12.0)
        .seed(42)
        .build();

    // NetMax with paper defaults: consensus SGD workers + Network Monitor
    // (Ts = 120 s) + Algorithm 3 policy generation.
    let mut netmax = NetMax::paper_default(alpha);
    let mut env = scenario.build_env_with(workload);
    let report = netmax.run(&mut env);

    println!("workload        : {}", report.workload);
    println!("workers         : {}", report.num_nodes);
    println!("global steps    : {}", report.global_steps);
    println!("epochs          : {:.1}", report.epochs_completed);
    println!("simulated time  : {:.1} s", report.wall_clock_s);
    println!("  compute/epoch : {:.2} s", report.comp_cost_per_epoch_s());
    println!("  comm/epoch    : {:.2} s", report.comm_cost_per_epoch_s());
    println!("final loss      : {:.4}", report.final_train_loss);
    println!("test accuracy   : {:.2}%", 100.0 * report.final_test_accuracy);
    println!("policies applied: {}", netmax.policies_applied());

    // The loss curve is available sample by sample:
    if let (Some(first), Some(last)) = (report.samples.first(), report.samples.last()) {
        println!(
            "loss {:.3} @ {:.0}s  ->  {:.3} @ {:.0}s",
            first.train_loss, first.time_s, last.train_loss, last.time_s
        );
    }
}
