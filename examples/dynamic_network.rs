//! Network dynamics (§I, Fig. 2): a link that is fast when training
//! starts can become slow later. A *static* high-speed-subgraph strategy
//! (what SAPS-PSGD assumes) bakes in the initial conditions; NetMax's
//! Network Monitor re-measures and re-optimises the policy every Ts.
//!
//! This example runs NetMax in three configurations on the same dynamic
//! network and shows that adaptation pays:
//!
//! 1. adaptive monitor (full NetMax),
//! 2. a single policy computed at t=0 and frozen (static assumption),
//! 3. no policy at all (uniform selection).
//!
//! ```sh
//! cargo run --release --example dynamic_network
//! ```

use netmax::core::monitor::MonitorConfig;
use netmax::prelude::*;

fn main() {
    let workload = WorkloadSpec::cifar10_like().instantiate(); // built once
    let alpha = workload.optim.lr;

    let scenario = |seed: u64| {
        ScenarioBuilder::new()
            .workers(8)
            .network(NetworkKind::HeterogeneousDynamic)
            .workload(WorkloadSpec::cifar10_like())
            .max_epochs(20.0)
            .seed(seed)
            .build()
    };

    // 1. Full NetMax: monitor fires every 30 simulated seconds.
    let mut cfg = NetMaxConfig::paper_default(alpha);
    cfg.monitor = MonitorConfig { period_s: 30.0, ..MonitorConfig::paper_default(alpha) };
    let mut adaptive = NetMax::new(cfg.clone());
    let r_adaptive = adaptive.run(&mut scenario(3).build_env_with(workload.clone()));

    // 2. "Static subgraph": one early policy, then the monitor stops.
    //    Emulated with a very long period — the first policy lands and is
    //    never revised while the slow link keeps moving underneath it.
    let mut frozen_cfg = cfg.clone();
    frozen_cfg.monitor.period_s = 40.0; // one early round...
    let mut frozen = NetMax::new(NetMaxConfig {
        monitor: MonitorConfig { period_s: 1e9, ..frozen_cfg.monitor.clone() },
        ..frozen_cfg
    });
    // A single warm-up round never fires with period 1e9, so instead run
    // the uniform variant against a *frozen* network draw for contrast:
    let r_frozen = {
        let sc = ScenarioBuilder::new()
            .workers(8)
            .network(NetworkKind::HeterogeneousStatic) // slow link frozen at window 0
            .workload(WorkloadSpec::cifar10_like())
            .max_epochs(20.0)
            .seed(3)
            .build();
        frozen.run(&mut sc.build_env_with(workload.clone()))
    };

    // 3. Uniform selection on the dynamic network.
    let mut uniform = NetMax::new(NetMaxConfig::uniform(alpha));
    let r_uniform = uniform.run(&mut scenario(3).build_env_with(workload.clone()));

    println!("dynamic heterogeneous network, 8 workers, 20 epochs\n");
    // The telling metric is per-node epoch time: with uniform selection,
    // workers adjacent to the slowed link crawl while the rest race ahead
    // — a fleet-average wall clock hides them, per-node accounting does
    // not (it is also how the paper's Fig. 5/7 bars are measured).
    println!("{:<42} {:>12} {:>12}", "configuration", "epoch(s)/node", "comm/ep(s)");
    for (name, r) in [
        ("NetMax, adaptive monitor (dynamic net)", &r_adaptive),
        ("no re-measurement (static-net assumption)", &r_frozen),
        ("uniform selection (dynamic net)", &r_uniform),
    ] {
        println!(
            "{:<42} {:>12.2} {:>12.2}",
            name,
            r.epoch_time_avg_s(),
            r.comm_cost_per_epoch_s()
        );
    }
    println!(
        "\nadaptive NetMax applied {} policies over the run",
        adaptive.policies_applied()
    );
    println!(
        "per-node epoch speedup over uniform selection: {:.2}x",
        r_uniform.epoch_time_avg_s() / r_adaptive.epoch_time_avg_s()
    );
}
