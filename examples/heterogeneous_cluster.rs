//! The paper's motivating scenario (§I): distributed training in a
//! multi-tenant GPU cluster where link speeds differ wildly, comparing
//! NetMax against the three state-of-the-art baselines.
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use netmax::prelude::*;

fn main() {
    let spec = WorkloadSpec::cifar10_like();
    let workload = spec.instantiate(); // datasets built once, shared below
    let alpha = workload.optim.lr;
    let scenario = ScenarioBuilder::new()
        .workers(8)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(spec)
        .max_epochs(16.0)
        .seed(7)
        .build();

    println!("8 workers, 3 servers, dynamic slow link (2-100x), ResNet18 profile\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "algorithm", "wall(s)", "epoch(s)", "comp/ep", "comm/ep", "acc"
    );

    let mut winner: Option<(String, f64)> = None;
    for kind in [
        AlgorithmKind::Prague,
        AlgorithmKind::AllreduceSgd,
        AlgorithmKind::AdPsgd,
        AlgorithmKind::NetMax,
    ] {
        let mut algo = algorithm_for(kind, alpha);
        let mut env = scenario.build_env_with(workload.clone());
        let r = algo.run(&mut env);
        println!(
            "{:<12} {:>10.1} {:>10.2} {:>10.2} {:>10.2} {:>7.2}%",
            kind.label(),
            r.wall_clock_s,
            r.epoch_time_avg_s(),
            r.comp_cost_per_epoch_s(),
            r.comm_cost_per_epoch_s(),
            100.0 * r.final_test_accuracy
        );
        if winner.as_ref().is_none_or(|(_, w)| r.wall_clock_s < *w) {
            winner = Some((kind.label().to_string(), r.wall_clock_s));
        }
    }

    let (name, wall) = winner.expect("at least one run");
    println!("\nfastest to {} epochs: {name} ({wall:.1} simulated seconds)", 16);
    println!("note: computation cost is identical across algorithms — the whole");
    println!("difference is communication, exactly as in the paper's Fig. 5.");
}
