//! Non-IID decentralized learning (§V-F, Table IV): eight workers on two
//! servers, each missing three MNIST digit classes, so no worker can
//! learn the task alone — information must flow through the gossip graph.
//!
//! Demonstrates the role of NetMax's inverse-probability merge weighting:
//! slow neighbours are pulled rarely but merged strongly, so their unique
//! labels still propagate (§V-H).
//!
//! ```sh
//! cargo run --release --example non_iid_federation
//! ```

use netmax::core::netmax::MergeWeighting;
use netmax::prelude::*;

fn main() {
    let spec = WorkloadSpec::mobilenet_mnist(5);
    let workload = spec.instantiate(); // datasets built once, shared below
    let alpha = workload.optim.lr;

    let scenario = ScenarioBuilder::new()
        .workers(8)
        .servers(2)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(spec)
        .partition(PartitionKind::PaperTable4)
        .max_epochs(10.0)
        .seed(5)
        .build();

    println!("Table IV non-IID MNIST: each worker is missing 3 digit labels\n");

    // Paper NetMax: inverse-probability weighting.
    let mut paper = NetMax::paper_default(alpha);
    let r_paper = paper.run(&mut scenario.build_env_with(workload.clone()));

    // Ablated NetMax: fixed 0.5 weighting (AD-PSGD style merges).
    let mut cfg = NetMaxConfig::paper_default(alpha);
    cfg.weighting = MergeWeighting::Fixed(0.5);
    let mut fixed = NetMax::new(cfg);
    let r_fixed = fixed.run(&mut scenario.build_env_with(workload.clone()));

    // AD-PSGD reference.
    let mut adpsgd = algorithm_for(AlgorithmKind::AdPsgd, alpha);
    let r_adpsgd = adpsgd.run(&mut scenario.build_env_with(workload.clone()));

    println!(
        "{:<36} {:>10} {:>10} {:>8}",
        "variant", "wall(s)", "loss", "acc"
    );
    for (name, r) in [
        ("NetMax (inverse-probability merge)", &r_paper),
        ("NetMax (fixed 0.5 merge)", &r_fixed),
        ("AD-PSGD", &r_adpsgd),
    ] {
        println!(
            "{:<36} {:>10.1} {:>10.4} {:>7.2}%",
            name,
            r.wall_clock_s,
            r.final_train_loss,
            100.0 * r.final_test_accuracy
        );
    }

    println!("\nnote: accuracy sits well below MNIST's usual ~99% — the paper");
    println!("observes the same (~93%, Table V) and attributes it to the");
    println!("non-IID label removal.");
}
