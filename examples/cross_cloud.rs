//! Geo-distributed training across six cloud regions (the paper's
//! Appendix G deployment): one worker per EC2 region, WAN latencies, and
//! the Table VII non-IID label distribution.
//!
//! Compares NetMax against AD-PSGD and both parameter-server flavours on
//! time-to-accuracy, and prints the policy audit showing *where* NetMax
//! decides the WAN bottleneck lies.
//!
//! ```sh
//! cargo run --release --example cross_cloud
//! ```

use netmax::core::diagnostics::audit_policy;
use netmax::core::policy::{PolicyGenerator, PolicySearchConfig};
use netmax::linalg::Matrix;
use netmax::net::{Network, Topology, WanNetwork};
use netmax::prelude::*;

const REGIONS: [&str; 6] = ["us-west", "us-east", "ireland", "mumbai", "singapore", "tokyo"];

fn main() {
    let spec = WorkloadSpec::mobilenet_mnist(23);
    let workload = spec.instantiate(); // datasets built once, shared below
    let alpha = workload.optim.lr;
    let scenario = ScenarioBuilder::new()
        .workers(6)
        .network(NetworkKind::Wan)
        .workload(spec)
        .partition(PartitionKind::PaperTable7)
        .max_epochs(10.0)
        .seed(23)
        .build();

    println!("six regions, one worker each, Table VII label skew, MobileNet profile\n");
    // Measured the paper's way (Fig. 19): time for the averaged model to
    // first reach a common test-accuracy target. Wall-clock at a fixed
    // *mean* epoch count would flatter PS-async, whose server-co-located
    // worker races ahead while the model quality lags — exactly the bias
    // §V-G describes.
    let mut reports = Vec::new();
    for kind in [
        AlgorithmKind::NetMax,
        AlgorithmKind::AdPsgd,
        AlgorithmKind::PsAsync,
        AlgorithmKind::PsSync,
    ] {
        let mut algo = algorithm_for(kind, alpha);
        let mut env = scenario.build_env_with(workload.clone());
        reports.push((kind, algo.run(&mut env)));
    }
    let target = reports
        .iter()
        .map(|(_, r)| r.final_test_accuracy)
        .fold(f64::INFINITY, f64::min)
        * 0.98;
    println!("time to {:.1}% test accuracy:", 100.0 * target);
    println!("{:<12} {:>12} {:>8}", "algorithm", "t@acc(s)", "final");
    for (kind, r) in &reports {
        let t = r
            .samples
            .iter()
            .find(|s| s.test_accuracy.is_some_and(|a| a >= target))
            .map(|s| s.time_s)
            .unwrap_or(r.wall_clock_s);
        println!(
            "{:<12} {:>12.1} {:>7.2}%",
            kind.label(),
            t,
            100.0 * r.final_test_accuracy
        );
    }

    // Where is the WAN bottleneck? Audit a policy built from the true
    // region-to-region times.
    let wan = WanNetwork::paper_default();
    let bytes = ModelProfile::mobilenet().param_bytes();
    let mut times = Matrix::zeros(6, 6);
    for i in 0..6 {
        for j in 0..6 {
            if i != j {
                times[(i, j)] = wan.comm_time(i, j, bytes, 0.0);
            }
        }
    }
    let topo = Topology::fully_connected(6);
    let gen = PolicyGenerator::new(PolicySearchConfig::new(alpha));
    if let Some(res) = gen.generate(&times, &topo) {
        let audit = audit_policy(&res, &times, &topo, alpha);
        let name_side = |side: &[usize]| {
            side.iter().map(|&i| REGIONS[i]).collect::<Vec<_>>().join("+")
        };
        println!("\npolicy audit over the WAN latency matrix:");
        println!("  expected iteration: {:.2}s (uniform: {:.2}s, {:.2}x faster)",
            audit.expected_iteration_s, audit.uniform_iteration_s, audit.iteration_speedup());
        println!("  mixing rate (1-λ₂): {:.4}", audit.spectral_gap);
        println!(
            "  slowest-mixing cut: [{}] | [{}]",
            name_side(&audit.bottleneck.0),
            name_side(&audit.bottleneck.1)
        );
    }
}
